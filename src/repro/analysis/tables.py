"""Plain-text table rendering for the reproduced tables and figures."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "print_table"]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3g}" if abs(value) < 100 else f"{value:.1f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(cell[i]) for cell in table)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for cell in table:
        lines.append("  ".join(cell[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(series: Mapping[object, object], x_label: str = "x", y_label: str = "y") -> str:
    """Render an x -> y mapping (a figure's data series) as a two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in series.items()]
    return format_table(rows, columns=[x_label, y_label])


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    """Convenience: format and print a table."""
    print(format_table(rows, columns=columns, title=title))
