"""Verification / end-to-end speedup accounting (Tables 4 and 5 of the paper).

The paper compares three quantities for a mapping run with a pre-alignment
filter against the same run without one:

* **theoretical speedup** — verification time would shrink in direct
  proportion to the candidate reduction if filtering were free;
* **achieved verification speedup** — (filter kernel time + remaining
  verification time) versus the unfiltered verification time;
* **overall speedup** — the whole mapping run, where the non-verification
  stages (seeding, IO, preprocessing for the GPU filter) are unchanged or grow.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeedupReport", "compute_speedup"]


@dataclass(frozen=True)
class SpeedupReport:
    """Speedups of one filtered mapping run relative to the unfiltered run."""

    reduction: float
    no_filter_verification_s: float
    filtered_verification_s: float
    filter_kernel_s: float
    filter_preprocess_s: float
    no_filter_overall_s: float
    filtered_overall_s: float

    @property
    def theoretical_dp_time_s(self) -> float:
        """Verification time if it shrank exactly with the reduction."""
        return self.no_filter_verification_s * (1.0 - self.reduction)

    @property
    def theoretical_speedup(self) -> float:
        remaining = self.theoretical_dp_time_s
        return self.no_filter_verification_s / remaining if remaining > 0 else float("inf")

    @property
    def filtering_plus_dp_time_s(self) -> float:
        return self.filter_kernel_s + self.filtered_verification_s

    @property
    def achieved_verification_speedup(self) -> float:
        denominator = self.filtering_plus_dp_time_s
        return self.no_filter_verification_s / denominator if denominator > 0 else float("inf")

    @property
    def overall_speedup(self) -> float:
        return (
            self.no_filter_overall_s / self.filtered_overall_s
            if self.filtered_overall_s > 0
            else float("inf")
        )

    def as_row(self) -> dict[str, float]:
        return {
            "reduction_pct": round(100.0 * self.reduction, 1),
            "no_filter_dp_h": round(self.no_filter_verification_s / 3600.0, 3),
            "theoretical_dp_h": round(self.theoretical_dp_time_s / 3600.0, 3),
            "theoretical_speedup": round(self.theoretical_speedup, 1),
            "filtering_plus_dp_h": round(self.filtering_plus_dp_time_s / 3600.0, 3),
            "achieved_dp_speedup": round(self.achieved_verification_speedup, 1),
            "no_filter_overall_h": round(self.no_filter_overall_s / 3600.0, 3),
            "filtered_overall_h": round(self.filtered_overall_s / 3600.0, 3),
            "overall_speedup": round(self.overall_speedup, 2),
        }


def compute_speedup(
    n_candidate_pairs: int,
    n_surviving_pairs: int,
    verification_cost_per_pair_s: float,
    filter_kernel_s: float,
    filter_preprocess_s: float,
    other_mapping_time_s: float,
) -> SpeedupReport:
    """Build a :class:`SpeedupReport` from pair counts and modelled stage costs.

    ``other_mapping_time_s`` covers everything that is identical with and
    without the filter (seeding, IO, reporting); the filtered run additionally
    pays ``filter_preprocess_s`` (buffer preparation, encoding) and the filter
    kernel time.
    """
    if n_candidate_pairs <= 0:
        raise ValueError("n_candidate_pairs must be positive")
    if n_surviving_pairs < 0 or n_surviving_pairs > n_candidate_pairs:
        raise ValueError("n_surviving_pairs must be within [0, n_candidate_pairs]")
    no_filter_dp = n_candidate_pairs * verification_cost_per_pair_s
    filtered_dp = n_surviving_pairs * verification_cost_per_pair_s
    reduction = 1.0 - (n_surviving_pairs / n_candidate_pairs)
    return SpeedupReport(
        reduction=reduction,
        no_filter_verification_s=no_filter_dp,
        filtered_verification_s=filtered_dp,
        filter_kernel_s=filter_kernel_s,
        filter_preprocess_s=filter_preprocess_s,
        no_filter_overall_s=no_filter_dp + other_mapping_time_s,
        filtered_overall_s=filtered_dp
        + filter_kernel_s
        + filter_preprocess_s
        + other_mapping_time_s,
    )
