"""Analysis and experiment drivers: accuracy, throughput, speedup and tables.

Report dictionaries flowing through this package follow the canonical
:mod:`repro.api.result` schema; :func:`normalize_summary` /
:func:`legacy_summary` (re-exported here) bridge the pre-schema key
spellings that older tables and ``BENCH_*.json`` files used.
"""

from ..api.result import legacy_summary, normalize_summary
from .accuracy import AccuracySummary, evaluate_decisions, labels_from_distances
from .speedup import SpeedupReport, compute_speedup
from .tables import format_series, format_table, print_table
from .throughput import (
    FORTY_MINUTES_S,
    ThroughputEntry,
    billions_in_40_minutes,
    millions_per_second,
    pairs_per_second,
)
from . import experiments

__all__ = [
    "AccuracySummary",
    "evaluate_decisions",
    "labels_from_distances",
    "SpeedupReport",
    "compute_speedup",
    "format_series",
    "format_table",
    "print_table",
    "FORTY_MINUTES_S",
    "ThroughputEntry",
    "billions_in_40_minutes",
    "millions_per_second",
    "pairs_per_second",
    "experiments",
    "normalize_summary",
    "legacy_summary",
]
