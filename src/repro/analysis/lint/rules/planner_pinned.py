"""``planner-pinned-before-fanout``: resolve ``filter = "auto"`` before fan-out.

The adaptive planner (PR 10) plans exactly once — in ``Session.run`` or
``plan_shards`` — and pins the resolved cascade into the workload before any
parallelism sees it.  A fan-out constructed while the :class:`FilterSpec` is
still the unresolved ``"auto"`` sentinel would let each worker (or each
cluster shard) plan independently, and two probes over different prefixes can
legally disagree — silently breaking the byte-identical Result contract.

The contract is therefore structural: inside ``repro.api`` and
``repro.cluster``, any function that constructs an executor fan-out
(``create_executor(...)``) or a shard plan (``ShardPlan(...)``) must first —
lexically earlier in the same function body — resolve or guard the workload
via ``ensure_resolved(...)`` (:mod:`repro.planner.guard`) or
``resolve_workload(...)`` (:mod:`repro.planner`).  Nested function
definitions are checked independently: a guard in the enclosing function
does not cover a closure that fans out later.
"""

from __future__ import annotations

import ast

from ..engine import Rule, Violation, terminal_name

__all__ = ["PlannerPinnedBeforeFanoutRule"]

#: Call targets that begin a fan-out: per-pair work is about to be
#: partitioned across workers or shard files.
_FANOUT_CALLS = frozenset({"create_executor", "ShardPlan"})

#: Call targets that prove the workload's filter is no longer ``"auto"``.
_RESOLVE_CALLS = frozenset({"ensure_resolved", "resolve_workload"})


def _body_calls(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> "list[ast.Call]":
    """Calls in ``func``'s own body, in source order, skipping nested defs."""
    calls: list[ast.Call] = []
    stack: list[ast.AST] = list(reversed(func.body))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(reversed(list(ast.iter_child_nodes(node))))
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


class PlannerPinnedBeforeFanoutRule(Rule):
    rule_id = "planner-pinned-before-fanout"
    contract = (
        "fan-out sites (create_executor / ShardPlan) in repro.api and "
        "repro.cluster resolve or guard filter='auto' first (ensure_resolved "
        "/ resolve_workload), so planning happens once, never per worker"
    )

    def applies_to(self, mpath: str) -> bool:
        return mpath.startswith("repro/api/") or mpath.startswith("repro/cluster/")

    def check(self, tree: ast.Module, path: str) -> "list[Violation]":
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(node, path))
        return findings

    def _check_function(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef", path: str
    ) -> "list[Violation]":
        findings: list[Violation] = []
        resolved_at: "tuple[int, int] | None" = None
        for call in _body_calls(func):
            name = terminal_name(call.func)
            if name in _RESOLVE_CALLS:
                if resolved_at is None:
                    resolved_at = (call.lineno, call.col_offset)
                continue
            if name not in _FANOUT_CALLS:
                continue
            guarded = resolved_at is not None and resolved_at < (
                call.lineno,
                call.col_offset,
            )
            if not guarded:
                findings.append(
                    self.violation(
                        call,
                        path,
                        f"{name}(...) fans out before the workload's filter "
                        "is provably resolved; call ensure_resolved() or "
                        "resolve_workload() earlier in this function so a "
                        "filter='auto' workload is planned once, not per "
                        "worker or per shard",
                    )
                )
        return findings
