"""``determinism-hazards``: results must not depend on clocks, seeds or hash order.

Every :class:`repro.api.Result` is reproducible by contract — the timing
numbers come from the *analytic* device model, datasets from seeded
generators, and reductions are order-independent.  Three spellings quietly
break that:

* wall clocks (``time.time()``, ``datetime.now()``) leaking into modelled
  quantities — the model owns all reported times;
* unseeded randomness (bare ``random.*``, ``random.Random()`` with no seed,
  the legacy ``np.random.*`` global-state API) — generators must be
  constructed from an explicit seed (``random.Random(seed)``,
  ``np.random.default_rng(seed)``);
* iterating a ``set`` directly — set order varies across processes under
  hash randomisation, so any reduction driven by it is run-to-run unstable
  (iterate ``sorted(...)`` instead).

``time.perf_counter`` is *allowed*: it is the blessed spelling for measured
host-side wall-clock sections, which the schema reports separately from
modelled times.
"""

from __future__ import annotations

import ast

from ..engine import Rule, Violation, dotted_name, terminal_name

__all__ = ["DeterminismHazardsRule"]

#: Wall-clock calls whose values would make results run-dependent.
_CLOCK_CALLS = frozenset({"time.time", "time.time_ns"})

#: ``datetime``-flavoured "now" constructors.
_NOW_ATTRS = frozenset({"now", "utcnow", "today"})

#: Legacy numpy global-state RNG entry points (np.random.<fn>).
_NUMPY_GLOBAL_RNG = frozenset({
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "seed",
    "uniform",
    "normal",
    "standard_normal",
    "bytes",
})


class DeterminismHazardsRule(Rule):
    rule_id = "determinism-hazards"
    contract = (
        "no wall clocks, unseeded RNGs or set-order iteration in result-"
        "producing code; times come from the model, RNGs from explicit seeds"
    )

    def check(self, tree: ast.Module, path: str) -> "list[Violation]":
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(node, path))
            elif isinstance(node, ast.For):
                findings.extend(self._check_iteration(node.iter, path))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    findings.extend(self._check_iteration(comp.iter, path))
        return findings

    def _check_call(self, node: ast.Call, path: str) -> "list[Violation]":
        dotted = dotted_name(node.func)
        if dotted in _CLOCK_CALLS:
            return [
                self.violation(
                    node,
                    path,
                    f"{dotted}() is a wall clock; reported times come from "
                    "the analytic model (time.perf_counter for measured "
                    "host sections)",
                )
            ]
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _NOW_ATTRS
            and dotted is not None
            and ("datetime" in dotted or dotted.startswith("date."))
        ):
            return [
                self.violation(
                    node,
                    path,
                    f"{dotted}() stamps results with the wall clock, making "
                    "them run-dependent",
                )
            ]
        if dotted is not None and dotted.startswith("random."):
            member = dotted.split(".", 1)[1]
            if member == "Random":
                if not node.args and not node.keywords:
                    return [
                        self.violation(
                            node,
                            path,
                            "random.Random() without a seed; construct RNGs "
                            "from an explicit seed",
                        )
                    ]
                return []
            if member == "SystemRandom":
                return [
                    self.violation(
                        node,
                        path,
                        "random.SystemRandom() is inherently unseedable",
                    )
                ]
            return [
                self.violation(
                    node,
                    path,
                    f"{dotted}() draws from the unseeded module-global RNG; "
                    "use a random.Random(seed) instance",
                )
            ]
        if dotted is not None and (
            dotted.startswith("np.random.") or dotted.startswith("numpy.random.")
        ):
            member = dotted.rsplit(".", 1)[1]
            if member in _NUMPY_GLOBAL_RNG:
                return [
                    self.violation(
                        node,
                        path,
                        f"{dotted}() uses numpy's global RNG state; use "
                        "np.random.default_rng(seed)",
                    )
                ]
        return []

    def _check_iteration(self, iterable: ast.expr, path: str) -> "list[Violation]":
        if isinstance(iterable, ast.Set) or (
            isinstance(iterable, ast.Call)
            and terminal_name(iterable.func) == "set"
        ):
            return [
                self.violation(
                    iterable,
                    path,
                    "iterates a set directly; set order varies under hash "
                    "randomisation — iterate sorted(...) for a stable order",
                )
            ]
        return []
