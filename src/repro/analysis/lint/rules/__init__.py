"""The repo-specific invariant rules, in their canonical order.

Each module holds one :class:`~repro.analysis.lint.engine.Rule` subclass; the
registry below is the default rule set of :func:`repro.analysis.lint.lint_paths`
and the source of the ``repro lint --list-rules`` output.
"""

from __future__ import annotations

from ..engine import Rule
from .determinism import DeterminismHazardsRule
from .encode_once import EncodeOnceRule
from .facade_imports import DeprecatedFacadeImportsRule
from .native_parity import NativeKernelParityRule
from .planner_pinned import PlannerPinnedBeforeFanoutRule
from .reduction import PartitionInvariantReductionRule
from .schema_keys import ResultSchemaKeysRule
from .shm_lifecycle import ShmLifecycleRule

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "EncodeOnceRule",
    "PartitionInvariantReductionRule",
    "ShmLifecycleRule",
    "DeterminismHazardsRule",
    "ResultSchemaKeysRule",
    "DeprecatedFacadeImportsRule",
    "NativeKernelParityRule",
    "PlannerPinnedBeforeFanoutRule",
]

#: The default rule set, in reporting order.
ALL_RULES: "tuple[Rule, ...]" = (
    EncodeOnceRule(),
    PartitionInvariantReductionRule(),
    ShmLifecycleRule(),
    DeterminismHazardsRule(),
    ResultSchemaKeysRule(),
    DeprecatedFacadeImportsRule(),
    NativeKernelParityRule(),
    PlannerPinnedBeforeFanoutRule(),
)

RULES_BY_ID: "dict[str, Rule]" = {rule.rule_id: rule for rule in ALL_RULES}
