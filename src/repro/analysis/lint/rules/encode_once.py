"""``encode-once``: sequences are encoded exactly once, at the ingest seams.

The whole encode-once architecture (PR 3) threads an
:class:`~repro.genomics.encoding.EncodedPairBatch` from ingest through every
filter, executor and cascade stage; re-running ``encode_batch_codes`` or
constructing a fresh ``EncodedPairBatch`` deep in the stack silently redoes
the O(n·L) encode work the design exists to avoid — and worse, can diverge
from the ingest-time undefined-base accounting.  This rule confines those
two spellings to the whitelisted ingest seams; everything else must accept an
already-encoded batch (or go through ``EncodedPairBatch.from_lists``, the one
blessed ingest API, which is only defined at a seam anyway).
"""

from __future__ import annotations

import ast

from ..engine import Rule, Violation, terminal_name

__all__ = ["EncodeOnceRule", "INGEST_SEAMS"]

#: Modules allowed to encode raw sequences or assemble encoded batches:
#: the encoding layer itself, the dataset-preparation seam, the batch filter
#: ingest adapter, and the shared-memory transport (which *re-wraps* already
#: encoded arrays around attached buffers — zero-copy, not a re-encode).
INGEST_SEAMS = (
    "repro/genomics/encoding.py",
    "repro/core/preprocess.py",
    "repro/filters/batch.py",
    "repro/exec/shared_batch.py",
)


class EncodeOnceRule(Rule):
    rule_id = "encode-once"
    contract = (
        "encode_batch_codes / EncodedPairBatch(...) construction only in "
        "whitelisted ingest seams; downstream layers accept encoded batches"
    )

    def applies_to(self, mpath: str) -> bool:
        return mpath.startswith("repro/") and mpath not in INGEST_SEAMS

    def check(self, tree: ast.Module, path: str) -> "list[Violation]":
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = terminal_name(node.func)
            if name == "encode_batch_codes":
                findings.append(
                    self.violation(
                        node,
                        path,
                        "re-encodes raw sequences outside the ingest seams; "
                        "thread the ingest-time EncodedPairBatch through "
                        "instead (or use dataset.encoded())",
                    )
                )
            elif name in ("EncodedPairBatch", "EncodedBatch"):
                # `EncodedPairBatch.from_lists(...)` is the blessed ingest
                # API; a direct constructor call is the assembly we confine.
                findings.append(
                    self.violation(
                        node,
                        path,
                        f"constructs {name}(...) outside the ingest seams; "
                        "pass the existing encoded batch (views/selects are "
                        "free) or ingest via EncodedPairBatch.from_lists",
                    )
                )
        return findings
