"""``deprecated-facade-imports``: internal code goes through ``repro.api``.

``FilteringPipeline`` and ``StreamingPipeline`` are the pre-``repro.api``
façades, kept importable for external users but deprecated internally: the
Workload/Session API (PR 4) is the single entry point, and new internal call
sites on the old façades would re-entrench exactly the coupling that API
removed.  This rule bans imports of the façades (by name, or of their home
modules) everywhere inside ``repro`` except the compatibility surface:
``repro.api`` itself (which wraps them), the modules that *define* them, and
the package ``__init__`` re-exports that keep the public names alive.
"""

from __future__ import annotations

import ast

from ..engine import Rule, Violation

__all__ = ["DeprecatedFacadeImportsRule"]

_FACADE_NAMES = frozenset({"FilteringPipeline", "StreamingPipeline"})
_FACADE_MODULES = (
    "repro.core.pipeline",
    "repro.runtime.streaming",
)

#: Where façade imports remain legitimate: the wrapping API layer, the
#: defining modules' own packages, and the public re-export __init__s.
_ALLOWED_PREFIXES = ("repro/api/", "repro/runtime/")
_ALLOWED_FILES = ("repro/core/pipeline.py",)


class DeprecatedFacadeImportsRule(Rule):
    rule_id = "deprecated-facade-imports"
    contract = (
        "no new internal imports of FilteringPipeline/StreamingPipeline "
        "outside repro.api; use Workload/Session"
    )

    def applies_to(self, mpath: str) -> bool:
        if not mpath.startswith("repro/"):
            return False
        if mpath in _ALLOWED_FILES:
            return False
        return not any(mpath.startswith(prefix) for prefix in _ALLOWED_PREFIXES)

    def check(self, tree: ast.Module, path: str) -> "list[Violation]":
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                names = {alias.name for alias in node.names}
                facade = sorted(names & _FACADE_NAMES)
                if facade:
                    findings.append(
                        self.violation(
                            node,
                            path,
                            f"imports deprecated façade {', '.join(facade)}; "
                            "internal code goes through repro.api "
                            "(Workload/Session)",
                        )
                    )
                elif node.level == 0 and node.module in _FACADE_MODULES:
                    findings.append(
                        self.violation(
                            node,
                            path,
                            f"imports from façade module {node.module}; "
                            "internal code goes through repro.api",
                        )
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _FACADE_MODULES:
                        findings.append(
                            self.violation(
                                node,
                                path,
                                f"imports façade module {alias.name}; "
                                "internal code goes through repro.api",
                            )
                        )
        return findings
