"""``native-kernel-parity``: every native kernel has a same-named NumPy twin.

The native kernel tier (:mod:`repro.filters.native`) promises bit-identical
decisions whether or not Numba is installed, which rests on two structural
invariants the AST can check:

* every ``register_fallback("name", fn)`` call registers a *same-named*
  module-level function — the fallback for kernel ``"name"`` must be spelled
  ``name`` (possibly behind a module prefix, ``_packed.popcount``).  A
  mismatched registration would silently pair a native kernel with the wrong
  reference implementation, and the differential tests would then "verify"
  the wrong twin;
* ``numba`` is imported only inside ``repro/filters/native``.  A direct
  ``numba`` import anywhere else bypasses the registry's
  availability-probe / guarded-fallback machinery, so that module would
  crash instead of falling back when Numba is absent.
"""

from __future__ import annotations

import ast

from ..engine import Rule, Violation, module_path, terminal_name

__all__ = ["NativeKernelParityRule"]

#: The only package allowed to import numba (the tier implementation itself).
_NATIVE_PREFIX = "repro/filters/native/"


class NativeKernelParityRule(Rule):
    rule_id = "native-kernel-parity"
    contract = (
        "register_fallback pairs a kernel name with a same-named NumPy "
        "function; numba is imported only inside repro.filters.native"
    )

    def check(self, tree: ast.Module, path: str) -> "list[Violation]":
        findings: list[Violation] = []
        in_native = module_path(path).startswith(_NATIVE_PREFIX)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_registration(node, path))
            elif not in_native:
                findings.extend(self._check_numba_import(node, path))
        return findings

    def _check_registration(self, node: ast.Call, path: str) -> "list[Violation]":
        if terminal_name(node.func) != "register_fallback":
            return []
        if len(node.args) < 2:
            return []
        name_arg, fn_arg = node.args[0], node.args[1]
        if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
            return []
        fallback = terminal_name(fn_arg)
        if fallback is None:
            return [
                self.violation(
                    node,
                    path,
                    f"register_fallback({name_arg.value!r}, ...) must pass a "
                    "named module-level function so the NumPy twin is "
                    "auditable by name",
                )
            ]
        if fallback != name_arg.value:
            return [
                self.violation(
                    node,
                    path,
                    f"register_fallback({name_arg.value!r}, ...) registers "
                    f"{fallback!r}; the NumPy fallback must share the kernel's "
                    "registered name",
                )
            ]
        return []

    def _check_numba_import(self, node: ast.AST, path: str) -> "list[Violation]":
        if isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and (
                node.module == "numba" or node.module.startswith("numba.")
            ):
                return [
                    self.violation(
                        node,
                        path,
                        f"imports from {node.module}; numba is only imported "
                        "inside repro.filters.native (use the kernel registry)",
                    )
                ]
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numba" or alias.name.startswith("numba."):
                    return [
                        self.violation(
                            node,
                            path,
                            f"imports {alias.name}; numba is only imported "
                            "inside repro.filters.native (use the kernel "
                            "registry)",
                        )
                    ]
        return []
