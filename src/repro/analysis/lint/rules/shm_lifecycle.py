"""``shm-lifecycle``: parent creates + unlinks, workers attach and only close.

POSIX shared memory outlives the process; a created segment that escapes its
``unlink()`` leaks kernel memory until reboot, and a worker that unlinks a
segment it merely attached to yanks the mapping out from under its siblings.
The engineered lifecycle (PR 5) is therefore asymmetric:

* **create sites** — ``SharedMemory(create=True, ...)`` — must sit inside a
  function that also has a ``try``/``finally`` (or handler) calling both
  ``.close()`` and ``.unlink()`` on the segment;
* **attach sites** — ``SharedMemory(name=...)`` — must *never* call
  ``.unlink()`` on the attached segment.
"""

from __future__ import annotations

import ast

from ..engine import Rule, Violation, terminal_name

__all__ = ["ShmLifecycleRule"]


def _is_shared_memory_call(node: ast.Call) -> bool:
    return terminal_name(node.func) == "SharedMemory"


def _is_create_call(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _assigned_name(stmt: ast.AST) -> "str | None":
    """The simple name a ``x = SharedMemory(...)`` statement binds, if any."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        return stmt.target.id
    return None


def _method_calls(nodes: "list[ast.stmt]", name: str) -> "set[str]":
    """Method names called on ``name`` anywhere under ``nodes``."""
    calls: set[str] = set()
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                calls.add(node.func.attr)
    return calls


class ShmLifecycleRule(Rule):
    rule_id = "shm-lifecycle"
    contract = (
        "SharedMemory(create=True) sits in try/finally with close()+unlink(); "
        "attach sites never unlink"
    )

    def check(self, tree: ast.Module, path: str) -> "list[Violation]":
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(node, path))
        return findings

    def _check_function(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef", path: str
    ) -> "list[Violation]":
        findings: list[Violation] = []
        creates: list[tuple[ast.Call, "str | None"]] = []
        attaches: list[tuple[ast.Call, "str | None"]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and _is_shared_memory_call(node):
                bound = self._binding_for(func, node)
                if _is_create_call(node):
                    creates.append((node, bound))
                else:
                    attaches.append((node, bound))

        cleanup = self._cleanup_calls(func)
        for call, bound in creates:
            covered = bound is not None and (
                "close" in cleanup.get(bound, set())
                and "unlink" in cleanup.get(bound, set())
            )
            if not covered:
                findings.append(
                    self.violation(
                        call,
                        path,
                        "SharedMemory(create=True) without a try/finally (or "
                        "handler) that both close()s and unlink()s the "
                        "segment; a leaked segment survives the process",
                    )
                )
        for call, bound in attaches:
            if bound is None:
                continue
            if "unlink" in _method_calls(func.body, bound):
                findings.append(
                    self.violation(
                        call,
                        path,
                        f"attach site unlinks '{bound}'; only the creating "
                        "parent may unlink a segment",
                    )
                )
        return findings

    def _binding_for(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef", call: ast.Call
    ) -> "str | None":
        """The name the call's result is bound to, if a simple assignment."""
        for stmt in ast.walk(func):
            name = _assigned_name(stmt)
            if name is not None and getattr(stmt, "value", None) is call:
                return name
            # `x = fn(SharedMemory(...))` etc. — treat as unbound.
        return None

    def _cleanup_calls(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> "dict[str, set[str]]":
        """Methods invoked on each name inside finally/except blocks."""
        cleanup: dict[str, set[str]] = {}
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            guarded: list[ast.stmt] = list(node.finalbody)
            for handler in node.handlers:
                guarded.extend(handler.body)
            for stmt in guarded:
                for inner in ast.walk(stmt):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and isinstance(inner.func.value, ast.Name)
                    ):
                        cleanup.setdefault(inner.func.value.id, set()).add(
                            inner.func.attr
                        )
        return cleanup
