"""``partition-invariant-reduction``: never sum modelled costs from shares.

Parallel fan-out (PR 5) must report byte-identical results to the serial
path.  Counts of accepted/rejected pairs reduce trivially, but the modelled
quantities — kernel-call counts (``n_batches``) and analytic times — are
*partition-dependent*: their per-share values change with the worker count,
so summing them bakes the partition into the result.  The engineered rule is
to recompute them from the totals (``expected_n_batches`` + one evaluation of
the timing model), and this lint rule flags the tempting wrong spelling: a
loop or comprehension over per-share outcomes that reads a modelled-cost
attribute off the loop variable.
"""

from __future__ import annotations

import ast

from ..engine import Rule, Violation, terminal_name

__all__ = ["PartitionInvariantReductionRule", "PARTITION_ATTRS"]

#: Attributes whose per-share values are partition-dependent.
PARTITION_ATTRS = frozenset({
    "n_batches",
    "kernel_time_s",
    "filter_time_s",
    "wall_clock_s",
    "encode_s",
    "host_prep_s",
    "transfer_s",
    "serial_time_s",
    "overlapped_time_s",
})

#: Iterable names that look like collections of per-share results.
_OUTCOME_HINTS = ("outcome", "share", "results", "futures")


def _iter_terminal(node: ast.AST) -> "str | None":
    """The terminal name of a loop iterable, unwrapping enumerate/zip/etc."""
    if isinstance(node, ast.Call):
        wrapper = terminal_name(node.func)
        if wrapper in ("enumerate", "zip", "reversed", "sorted", "list", "tuple"):
            for arg in node.args:
                name = _iter_terminal(arg)
                if name is not None:
                    return name
            return None
        return wrapper
    return terminal_name(node)


def _looks_like_outcomes(name: "str | None") -> bool:
    if not name:
        return False
    lowered = name.lower()
    return any(hint in lowered for hint in _OUTCOME_HINTS)


def _loop_targets(target: ast.AST) -> "set[str]":
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


class PartitionInvariantReductionRule(Rule):
    rule_id = "partition-invariant-reduction"
    contract = (
        "modelled times / n_batches are recomputed from totals "
        "(expected_n_batches + timing model), never summed over per-share "
        "outcomes"
    )

    def applies_to(self, mpath: str) -> bool:
        return (
            mpath.startswith("repro/exec/")
            or mpath.startswith("repro/engine/")
            or mpath.startswith("repro/runtime/")
            or mpath.startswith("repro/cluster/")
        )

    def check(self, tree: ast.Module, path: str) -> "list[Violation]":
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                if not _looks_like_outcomes(_iter_terminal(node.iter)):
                    continue
                targets = _loop_targets(node.target)
                body = node.body + node.orelse
                findings.extend(self._scan(body, targets, path))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if not _looks_like_outcomes(_iter_terminal(comp.iter)):
                        continue
                    targets = _loop_targets(comp.target)
                    findings.extend(self._scan([node.elt], targets, path))
        return findings

    def _scan(
        self, body: "list[ast.AST]", targets: "set[str]", path: str
    ) -> "list[Violation]":
        findings: list[Violation] = []
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in PARTITION_ATTRS
                    and isinstance(node.value, ast.Name)
                    and node.value.id in targets
                ):
                    findings.append(
                        self.violation(
                            node,
                            path,
                            f"reads partition-dependent '.{node.attr}' off a "
                            "per-share outcome; recompute from totals "
                            "(expected_n_batches / the timing model) instead "
                            "of reducing over shares",
                        )
                    )
        return findings
