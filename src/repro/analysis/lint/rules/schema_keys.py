"""``result-schema-keys``: report keys come from ``repro._schema``, not literals.

The :class:`repro.api.Result` schema is versioned; its key spellings live
once, in :mod:`repro._schema`.  A producer that writes ``"n_acepted"`` as a
string literal forks the schema silently — consumers keyed on the canonical
spelling just see the field vanish.  Inside the result-producing packages
(``repro.api`` and ``repro.engine``) this rule refuses the canonical
spellings as *string-literal* dict keys or subscript assignments: spell them
via the ``_schema`` constants so a typo is an ``ImportError``/``NameError``
instead of a silent fork.

Only the unambiguous subset (:data:`repro._schema.LINT_ENFORCED_KEYS`) is
enforced — keys that double as workload-spec vocabulary (``n_pairs``,
``chunk_size``, ...) stay writable as plain literals in spec dictionaries.

``repro.serve`` (the filter-as-a-service daemon) is covered too, with the
wire-envelope vocabulary added on top: every response key it emits
(``ok``/``error``/``result``/``status``/accounting fields —
:data:`repro._schema.SERVE_ENFORCED_KEYS`) must come from ``repro._schema``.
"""

from __future__ import annotations

import ast

from ...._schema import LINT_ENFORCED_KEYS, SERVE_ENFORCED_KEYS
from ..engine import Rule, Violation, module_path

__all__ = ["ResultSchemaKeysRule"]


class ResultSchemaKeysRule(Rule):
    rule_id = "result-schema-keys"
    contract = (
        "canonical report keys are spelled via repro._schema constants in "
        "repro.api / repro.engine / repro.serve, never as string literals"
    )

    def applies_to(self, mpath: str) -> bool:
        return (
            mpath.startswith("repro/api/")
            or mpath.startswith("repro/engine/")
            or mpath.startswith("repro/serve/")
            or mpath.startswith("repro/planner/")
        )

    @staticmethod
    def _enforced_for(path: str) -> "frozenset[str]":
        # The serve package also embeds canonical Result dictionaries, so it
        # answers for both vocabularies.
        if module_path(path).startswith("repro/serve/"):
            return LINT_ENFORCED_KEYS | SERVE_ENFORCED_KEYS
        return LINT_ENFORCED_KEYS

    def check(self, tree: ast.Module, path: str) -> "list[Violation]":
        enforced = self._enforced_for(path)
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value in enforced
                    ):
                        findings.append(self._finding(key, key.value, path, node))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                        and target.slice.value in enforced
                    ):
                        findings.append(
                            self._finding(target.slice, target.slice.value, path, node)
                        )
        return findings

    def _finding(
        self, node: ast.AST, key: str, path: str, span: ast.AST
    ) -> Violation:
        constant = key.upper()
        return self.violation(
            node,
            path,
            f"schema key '{key}' written as a string literal; use "
            f"repro._schema.{constant} so the spelling has one authority",
            span=span,
        )
