"""AST-based linter for the repo's engineered invariants (``repro lint``).

See :mod:`repro.analysis.lint.engine` for the machinery and
:mod:`repro.analysis.lint.rules` for the seven repo-specific rules.
"""

from __future__ import annotations

from .engine import (
    LINT_SCHEMA_VERSION,
    LintReport,
    Rule,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    module_path,
)
from .rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "LINT_SCHEMA_VERSION",
    "LintReport",
    "Rule",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_path",
    "ALL_RULES",
    "RULES_BY_ID",
]
