"""Core machinery of the repo-invariant linter (``repro lint``).

The engineered contracts of this codebase — encode-exactly-once per ingest,
partition-invariant reduction, the POSIX shared-memory lifecycle, determinism
of every :class:`~repro.api.result.Result`, one spelling authority for the
report schema, and the deprecation of the pre-``repro.api`` façades — used to
live only in docstrings and regression tests.  This module turns them into
machine-checked static analysis: each contract is a :class:`Rule` that walks
a file's AST and emits :class:`Violation` findings, and :func:`lint_paths`
drives the rules over a source tree.

Design notes
------------
* Rules are *path-aware*: a contract like "encoding happens only in the
  ingest seams" is inherently about which module the code lives in, so every
  rule sees the module path normalised to the package root
  (``repro/exec/fanout.py``) via :func:`module_path`.  Files outside the
  ``repro`` package (benchmarks, scripts) are outside the contracts and are
  skipped by the rules' ``applies_to``.
* Findings are waivable in place with ``# reprolint: disable=<rule>[,<rule>]``
  on any line the flagged statement spans (``disable=all`` waives every
  rule).  Waivers are for code that is *provably* correct for a reason the
  AST cannot see — the comment should say why.
* The linter is purely syntactic (no imports are executed), so it runs on
  any tree, including broken ones: files that fail to parse are reported
  under the pseudo-rule ``syntax-error``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "LINT_SCHEMA_VERSION",
    "Violation",
    "Rule",
    "LintReport",
    "module_path",
    "collect_waivers",
    "lint_source",
    "lint_file",
    "lint_paths",
    "dotted_name",
    "terminal_name",
]

#: Version of the ``repro lint --json`` payload.  Bump on any key change.
LINT_SCHEMA_VERSION = 1

#: ``# reprolint: disable=rule-a,rule-b`` (or ``disable=all``).
_WAIVER_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Violation:
    """One finding: a contract broken at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Waiver window (waivers on any line of the flagged construct apply).
    start_line: int = 0
    end_line: int = 0

    def format(self) -> str:
        """The one-line human spelling: ``file:line:col rule-id message``."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """One machine-checked invariant.

    Subclasses set :attr:`rule_id` (the kebab-case name used in findings and
    waivers), :attr:`contract` (the one-line statement of the invariant the
    rule enforces) and implement :meth:`check`; :meth:`applies_to` scopes the
    rule to the modules the contract governs.
    """

    rule_id: str = ""
    contract: str = ""

    def applies_to(self, mpath: str) -> bool:
        """Whether the contract governs the module at ``mpath``.

        ``mpath`` is the :func:`module_path`-normalised path
        (``repro/exec/fanout.py``); the default scope is the whole package.
        """
        return mpath.startswith("repro/")

    def check(self, tree: ast.Module, path: str) -> list[Violation]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def violation(
        self,
        node: ast.AST,
        path: str,
        message: str,
        span: "ast.AST | None" = None,
    ) -> Violation:
        """Build a finding anchored at ``node``.

        ``span`` widens the waiver window to an enclosing construct (e.g. the
        whole dict literal a flagged key sits in), so a waiver comment on the
        construct's opening line covers findings anywhere inside it.
        """
        line = getattr(node, "lineno", 1)
        span_node = span if span is not None else node
        start = getattr(span_node, "lineno", line)
        end = getattr(span_node, "end_lineno", None) or start
        return Violation(
            rule=self.rule_id,
            path=path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            start_line=min(start, line),
            end_line=max(end, line),
        )


def module_path(path: "str | Path") -> str:
    """Normalise ``path`` to a package-rooted posix path.

    ``/repo/src/repro/exec/fanout.py`` and ``src\\repro\\exec\\fanout.py``
    both become ``repro/exec/fanout.py``, so rules scope by module no matter
    where the tree is checked out.  Paths outside a ``repro`` directory are
    reduced to their basename (which no package-scoped rule matches).
    """
    parts = Path(path).as_posix().split("/")
    if "repro" in parts[:-1]:
        last = (len(parts) - 2) - parts[-2::-1].index("repro")
        return "/".join(parts[last:])
    return parts[-1]


def dotted_name(node: ast.AST) -> "str | None":
    """The dotted spelling of a ``Name``/``Attribute`` chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> "str | None":
    """The last component of a call target (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def collect_waivers(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids waived on that line."""
    waivers: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match:
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if rules:
                waivers[lineno] = rules
    return waivers


def _waived(violation: Violation, waivers: dict[int, frozenset[str]]) -> bool:
    start = min(violation.start_line or violation.line, violation.line)
    end = max(violation.end_line, violation.line)
    for line in range(start, end + 1):
        rules = waivers.get(line)
        if rules and (violation.rule in rules or "all" in rules):
            return True
    return False


def lint_source(
    source: str,
    path: str,
    rules: "Sequence[Rule] | None" = None,
) -> list[Violation]:
    """Check one source string against the rules, honouring waivers.

    ``path`` is used both for display and for rule scoping (via
    :func:`module_path`), so tests can place fixture snippets anywhere in the
    virtual tree.
    """
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                rule="syntax-error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    mpath = module_path(path)
    waivers = collect_waivers(source)
    findings: list[Violation] = []
    for rule in rules:
        if not rule.applies_to(mpath):
            continue
        for violation in rule.check(tree, path):
            if not _waived(violation, waivers):
                findings.append(violation)
    findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return findings


def lint_file(path: "str | Path", rules: "Sequence[Rule] | None" = None) -> list[Violation]:
    """Check one file on disk."""
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    return lint_source(text, str(path), rules=rules)


def iter_python_files(paths: Iterable["str | Path"]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to check, sorted."""
    seen: set[Path] = set()
    for item in paths:
        p = Path(item)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            parts = candidate.parts
            if "__pycache__" in parts or any(
                part.startswith(".") and part not in (".", "..") for part in parts
            ):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


@dataclass(frozen=True)
class LintReport:
    """The outcome of one :func:`lint_paths` sweep."""

    violations: tuple[Violation, ...]
    n_files: int
    rules: tuple[Rule, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        """The ``--json`` payload (stable keys, versioned)."""
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "n_files": self.n_files,
            "n_violations": len(self.violations),
            "rules": [
                {"id": rule.rule_id, "contract": rule.contract} for rule in self.rules
            ],
            "violations": [violation.as_dict() for violation in self.violations],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True) + "\n"


def lint_paths(
    paths: Iterable["str | Path"],
    rules: "Sequence[Rule] | None" = None,
) -> LintReport:
    """Check every ``.py`` file under ``paths`` and collect the findings."""
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    violations: list[Violation] = []
    n_files = 0
    for file in iter_python_files(paths):
        n_files += 1
        violations.extend(lint_file(file, rules=rules))
    return LintReport(
        violations=tuple(violations), n_files=n_files, rules=tuple(rules)
    )
