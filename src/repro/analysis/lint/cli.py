"""Command-line front end of the invariant linter (``repro lint``).

Exit codes follow the convention of the other ``repro`` commands: ``0`` for a
clean tree, ``1`` when violations were found, ``2`` for usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .engine import lint_paths
from .rules import ALL_RULES, RULES_BY_ID

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based linter for this repo's engineered invariants: "
            "encode-once ingest, partition-invariant reduction, the shared-"
            "memory lifecycle, result determinism, canonical schema keys and "
            "the repro.api entry-point contract."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a versioned JSON report instead of one line per finding",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the rules and the contracts they enforce, then exit",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    return parser


def _resolve_rules(select: "str | None", disable: "str | None") -> "list | None":
    """The rule subset the flags ask for; SystemExit(2) on unknown ids."""
    chosen = list(ALL_RULES)
    if select:
        wanted = [part.strip() for part in select.split(",") if part.strip()]
        unknown = [rule_id for rule_id in wanted if rule_id not in RULES_BY_ID]
        if unknown:
            raise SystemExit(f"repro lint: unknown rule(s): {', '.join(unknown)}")
        chosen = [RULES_BY_ID[rule_id] for rule_id in wanted]
    if disable:
        dropped = {part.strip() for part in disable.split(",") if part.strip()}
        unknown = sorted(dropped - set(RULES_BY_ID))
        if unknown:
            raise SystemExit(f"repro lint: unknown rule(s): {', '.join(unknown)}")
        chosen = [rule for rule in chosen if rule.rule_id not in dropped]
    return chosen


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}: {rule.contract}")
        return 0

    try:
        rules = _resolve_rules(args.select, args.disable)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    paths = list(args.paths)
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(
            f"repro lint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    report = lint_paths(paths, rules=rules)
    if args.json:
        sys.stdout.write(report.to_json())
    else:
        for violation in report.violations:
            print(violation.format())
        if report.violations:
            n = len(report.violations)
            print(
                f"repro lint: {n} violation{'s' if n != 1 else ''} "
                f"in {report.n_files} file(s)",
                file=sys.stderr,
            )
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
