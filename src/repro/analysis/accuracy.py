"""Accuracy metrics: false accepts, false rejects, true rejects and their rates.

Terminology follows Section 4.4 of the paper:

* a **false accept** is a pair that Edlib rejects (its exact edit distance
  exceeds the threshold) but the filter accepts;
* a **false reject** is a pair within the threshold that the filter rejects;
* a **true reject** is rejected by both;
* the **false accept rate** is false accepts over the pairs Edlib rejects, and
  the **true reject rate** is true rejects over the pairs Edlib rejects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AccuracySummary", "evaluate_decisions", "labels_from_distances"]


@dataclass(frozen=True)
class AccuracySummary:
    """Confusion counts of one filter against the ground truth."""

    n_pairs: int
    filter_accepted: int
    filter_rejected: int
    truth_accepted: int
    truth_rejected: int
    false_accepts: int
    false_rejects: int
    true_accepts: int
    true_rejects: int

    @property
    def false_accept_rate(self) -> float:
        """False accepts over the pairs the ground truth rejects (paper's FA rate)."""
        return self.false_accepts / self.truth_rejected if self.truth_rejected else 0.0

    @property
    def true_reject_rate(self) -> float:
        """True rejects over the pairs the ground truth rejects."""
        return self.true_rejects / self.truth_rejected if self.truth_rejected else 0.0

    @property
    def false_reject_rate(self) -> float:
        """False rejects over the pairs the ground truth accepts."""
        return self.false_rejects / self.truth_accepted if self.truth_accepted else 0.0

    def as_row(self) -> dict[str, float | int]:
        """Row form used by the reproduced tables (Sup. Tables S.2-S.12)."""
        return {
            "truth_accepted": self.truth_accepted,
            "truth_rejected": self.truth_rejected,
            "filter_accepted": self.filter_accepted,
            "filter_rejected": self.filter_rejected,
            "false_accepts": self.false_accepts,
            "false_rejects": self.false_rejects,
            "true_rejects": self.true_rejects,
            "false_accept_rate_pct": round(100.0 * self.false_accept_rate, 2),
            "true_reject_rate_pct": round(100.0 * self.true_reject_rate, 2),
        }


def labels_from_distances(
    distances: np.ndarray, threshold: int, undefined: np.ndarray | None = None
) -> np.ndarray:
    """Ground-truth accept labels: distance within threshold, or undefined pair."""
    distances = np.asarray(distances)
    labels = distances <= threshold
    if undefined is not None:
        labels = labels | np.asarray(undefined, dtype=bool)
    return labels


def evaluate_decisions(filter_accepts: np.ndarray, truth_accepts: np.ndarray) -> AccuracySummary:
    """Build the confusion summary from accept masks of the filter and the truth."""
    filter_accepts = np.asarray(filter_accepts, dtype=bool)
    truth_accepts = np.asarray(truth_accepts, dtype=bool)
    if filter_accepts.shape != truth_accepts.shape:
        raise ValueError("filter and truth label arrays must have the same shape")
    n = int(filter_accepts.shape[0])
    false_accepts = int(np.sum(filter_accepts & ~truth_accepts))
    false_rejects = int(np.sum(~filter_accepts & truth_accepts))
    true_accepts = int(np.sum(filter_accepts & truth_accepts))
    true_rejects = int(np.sum(~filter_accepts & ~truth_accepts))
    return AccuracySummary(
        n_pairs=n,
        filter_accepted=int(filter_accepts.sum()),
        filter_rejected=n - int(filter_accepts.sum()),
        truth_accepted=int(truth_accepts.sum()),
        truth_rejected=n - int(truth_accepts.sum()),
        false_accepts=false_accepts,
        false_rejects=false_rejects,
        true_accepts=true_accepts,
        true_rejects=true_rejects,
    )
