"""``python -m repro.analysis`` — run the repo-invariant linter."""

from __future__ import annotations

from .lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
