"""Smith-Waterman local alignment.

Included as the second canonical quadratic verifier the paper cites; used by
an example to contrast local vs global verification of filtered candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LocalAlignmentResult", "smith_waterman"]


@dataclass(frozen=True)
class LocalAlignmentResult:
    """Best local alignment between two sequences."""

    score: int
    a_start: int
    a_end: int
    b_start: int
    b_end: int
    aligned_a: str
    aligned_b: str


def smith_waterman(
    a: str,
    b: str,
    match: int = 2,
    mismatch: int = -1,
    gap: int = -2,
) -> LocalAlignmentResult:
    """Smith-Waterman local alignment with linear gap penalties."""
    n, m = len(a), len(b)
    score = np.zeros((n + 1, m + 1), dtype=np.int32)
    best_score, best_pos = 0, (0, 0)
    for i in range(1, n + 1):
        ai = a[i - 1]
        for j in range(1, m + 1):
            diag = score[i - 1, j - 1] + (match if ai == b[j - 1] else mismatch)
            up = score[i - 1, j] + gap
            left = score[i, j - 1] + gap
            value = max(0, diag, up, left)
            score[i, j] = value
            if value > best_score:
                best_score, best_pos = int(value), (i, j)

    # Traceback from the best cell until a zero cell.
    aligned_a: list[str] = []
    aligned_b: list[str] = []
    i, j = best_pos
    end_i, end_j = i, j
    while i > 0 and j > 0 and score[i, j] > 0:
        diag = score[i - 1, j - 1] + (match if a[i - 1] == b[j - 1] else mismatch)
        if score[i, j] == diag:
            aligned_a.append(a[i - 1])
            aligned_b.append(b[j - 1])
            i -= 1
            j -= 1
        elif score[i, j] == score[i - 1, j] + gap:
            aligned_a.append(a[i - 1])
            aligned_b.append("-")
            i -= 1
        else:
            aligned_a.append("-")
            aligned_b.append(b[j - 1])
            j -= 1
    return LocalAlignmentResult(
        score=best_score,
        a_start=i,
        a_end=end_i,
        b_start=j,
        b_end=end_j,
        aligned_a="".join(reversed(aligned_a)),
        aligned_b="".join(reversed(aligned_b)),
    )
