"""Needleman-Wunsch global alignment (score and traceback).

The paper cites Needleman-Wunsch as one of the quadratic dynamic-programming
verifiers whose cost motivates pre-alignment filtering.  The mapper's
verification stage uses the cheaper banded edit distance, but a full global
aligner with traceback is provided for the examples and for computing CIGAR
strings of reported mappings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AlignmentResult", "needleman_wunsch", "alignment_to_cigar"]


@dataclass(frozen=True)
class AlignmentResult:
    """Global alignment of two sequences."""

    score: int
    aligned_a: str
    aligned_b: str

    @property
    def edit_operations(self) -> int:
        """Number of mismatches plus gap columns in the alignment."""
        return sum(
            1
            for x, y in zip(self.aligned_a, self.aligned_b)
            if x == "-" or y == "-" or x != y
        )


def needleman_wunsch(
    a: str,
    b: str,
    match: int = 1,
    mismatch: int = -1,
    gap: int = -1,
) -> AlignmentResult:
    """Global alignment with linear gap penalties.

    Returns the optimal score and one optimal pair of gapped strings.
    """
    n, m = len(a), len(b)
    score = np.zeros((n + 1, m + 1), dtype=np.int32)
    score[:, 0] = np.arange(n + 1) * gap
    score[0, :] = np.arange(m + 1) * gap
    for i in range(1, n + 1):
        ai = a[i - 1]
        for j in range(1, m + 1):
            diag = score[i - 1, j - 1] + (match if ai == b[j - 1] else mismatch)
            up = score[i - 1, j] + gap
            left = score[i, j - 1] + gap
            score[i, j] = max(diag, up, left)

    # Traceback.
    aligned_a: list[str] = []
    aligned_b: list[str] = []
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            diag = score[i - 1, j - 1] + (match if a[i - 1] == b[j - 1] else mismatch)
            if score[i, j] == diag:
                aligned_a.append(a[i - 1])
                aligned_b.append(b[j - 1])
                i -= 1
                j -= 1
                continue
        if i > 0 and score[i, j] == score[i - 1, j] + gap:
            aligned_a.append(a[i - 1])
            aligned_b.append("-")
            i -= 1
            continue
        aligned_a.append("-")
        aligned_b.append(b[j - 1])
        j -= 1
    return AlignmentResult(
        score=int(score[n, m]),
        aligned_a="".join(reversed(aligned_a)),
        aligned_b="".join(reversed(aligned_b)),
    )


def alignment_to_cigar(aligned_a: str, aligned_b: str) -> str:
    """Convert a gapped alignment into a CIGAR string (M/I/D operations)."""
    if len(aligned_a) != len(aligned_b):
        raise ValueError("aligned strings must have equal length")
    ops: list[tuple[str, int]] = []
    for x, y in zip(aligned_a, aligned_b):
        if x == "-":
            op = "D"
        elif y == "-":
            op = "I"
        else:
            op = "M"
        if ops and ops[-1][0] == op:
            ops[-1] = (op, ops[-1][1] + 1)
        else:
            ops.append((op, 1))
    return "".join(f"{count}{op}" for op, count in ops)
