"""Sequence alignment and verification substrate (the Edlib/DP ground truth)."""

from .banded import banded_edit_distance, within_threshold
from .edit_distance import dp_edit_distance, edit_distance, myers_edit_distance
from .needleman_wunsch import AlignmentResult, alignment_to_cigar, needleman_wunsch
from .smith_waterman import LocalAlignmentResult, smith_waterman
from .verification import (
    VerificationResult,
    Verifier,
    ground_truth_distances,
    ground_truth_labels,
)

__all__ = [
    "banded_edit_distance",
    "within_threshold",
    "dp_edit_distance",
    "edit_distance",
    "myers_edit_distance",
    "AlignmentResult",
    "alignment_to_cigar",
    "needleman_wunsch",
    "LocalAlignmentResult",
    "smith_waterman",
    "VerificationResult",
    "Verifier",
    "ground_truth_distances",
    "ground_truth_labels",
]
