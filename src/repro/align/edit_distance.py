"""Exact edit (Levenshtein) distance: the Edlib-equivalent ground truth.

The paper uses Edlib's global alignment mode as the accuracy ground truth; the
algorithm behind Edlib is Myers' 1999 bit-parallel dynamic programming, which
computes the exact edit distance in ``O(n * m / w)`` word operations.  This
module provides

* :func:`myers_edit_distance` — Myers' algorithm using Python's arbitrary
  precision integers as the bit-vectors (a 100-300 bp pattern fits in a single
  "register", so the implementation stays simple and exact);
* :func:`dp_edit_distance` — the quadratic reference DP, used to validate the
  bit-parallel implementation in the test suite;
* :func:`edit_distance` — the public entry point (Myers).
"""

from __future__ import annotations

__all__ = ["edit_distance", "myers_edit_distance", "dp_edit_distance"]


def dp_edit_distance(a: str, b: str) -> int:
    """Classic O(n*m) dynamic-programming global edit distance."""
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    previous = list(range(m + 1))
    for i in range(1, n + 1):
        current = [i] + [0] * m
        ai = a[i - 1]
        for j in range(1, m + 1):
            cost = 0 if ai == b[j - 1] else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # match / substitution
            )
        previous = current
    return previous[m]


def myers_edit_distance(pattern: str, text: str) -> int:
    """Myers' bit-parallel global edit distance between ``pattern`` and ``text``.

    The roles of the two strings are symmetric for the distance value; the
    pattern indexes the bit-vectors.  Both strings may contain arbitrary
    characters (``N`` simply never matches anything but another ``N``).
    """
    m = len(pattern)
    n = len(text)
    if m == 0:
        return n
    if n == 0:
        return m

    # Bitmask of pattern positions per character.
    peq: dict[str, int] = {}
    for i, ch in enumerate(pattern):
        peq[ch] = peq.get(ch, 0) | (1 << i)

    all_ones = (1 << m) - 1
    pv = all_ones  # positive vertical deltas
    mv = 0  # negative vertical deltas
    score = m
    high_bit = 1 << (m - 1)

    for ch in text:
        eq = peq.get(ch, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | ~(xh | pv) & all_ones
        mh = pv & xh
        if ph & high_bit:
            score += 1
        if mh & high_bit:
            score -= 1
        ph = (ph << 1) & all_ones | 1
        mh = (mh << 1) & all_ones
        pv = mh | ~(xv | ph) & all_ones
        mv = ph & xv
    return score


def edit_distance(a: str, b: str) -> int:
    """Exact global edit distance (public entry point, Myers bit-parallel)."""
    # Index the shorter string as the pattern to keep the bit-vector small.
    if len(a) <= len(b):
        return myers_edit_distance(a, b)
    return myers_edit_distance(b, a)
