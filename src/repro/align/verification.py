"""Verification stage and ground-truth labelling.

The :class:`Verifier` is the mapper's verification stage (exact edit distance
against a threshold).  :func:`ground_truth_labels` produces the Edlib-style
accept/reject labels used by the accuracy experiments: a pair is labelled
*accept* if its exact global edit distance is within the threshold, *reject*
otherwise.  Undefined pairs (containing ``N``) are labelled accepted, exactly
as the paper does when including undefined pairs in the comparison tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..genomics.alphabet import contains_unknown
from ..genomics.sequence import SequencePair
from .banded import banded_edit_distance
from .edit_distance import edit_distance

__all__ = ["VerificationResult", "Verifier", "ground_truth_labels", "ground_truth_distances"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of verifying one pair."""

    edit_distance: int
    accepted: bool


class Verifier:
    """Exact (optionally banded) verification of read / segment pairs.

    Parameters
    ----------
    error_threshold:
        Maximum edit distance for a pair to be reported as a mapping.
    banded:
        Use the Ukkonen banded DP (exact for distances within the threshold)
        instead of the full Myers computation.  This is the default because it
        is what production verifiers do.
    """

    def __init__(self, error_threshold: int, banded: bool = True):
        if error_threshold < 0:
            raise ValueError("error_threshold must be non-negative")
        self.error_threshold = int(error_threshold)
        self.banded = banded
        self.pairs_verified = 0

    def verify(self, read: str, reference_segment: str) -> VerificationResult:
        """Verify one pair, returning its edit distance and accept decision."""
        self.pairs_verified += 1
        if self.banded:
            distance = banded_edit_distance(read, reference_segment, self.error_threshold)
        else:
            distance = edit_distance(read, reference_segment)
        return VerificationResult(
            edit_distance=distance, accepted=distance <= self.error_threshold
        )

    def verify_pairs(
        self, pairs: Iterable[SequencePair | tuple[str, str]]
    ) -> list[VerificationResult]:
        """Verify an iterable of pairs."""
        results = []
        for pair in pairs:
            if isinstance(pair, SequencePair):
                read, segment = pair.read, pair.reference_segment
            else:
                read, segment = pair
            results.append(self.verify(read, segment))
        return results


def ground_truth_distances(pairs: Sequence[SequencePair | tuple[str, str]]) -> np.ndarray:
    """Exact global edit distance of every pair (Edlib-equivalent)."""
    distances = np.empty(len(pairs), dtype=np.int32)
    for i, pair in enumerate(pairs):
        if isinstance(pair, SequencePair):
            read, segment = pair.read, pair.reference_segment
        else:
            read, segment = pair
        distances[i] = edit_distance(read, segment)
    return distances


def ground_truth_labels(
    pairs: Sequence[SequencePair | tuple[str, str]],
    error_threshold: int,
    undefined_accepted: bool = True,
) -> np.ndarray:
    """Edlib-style accept (True) / reject (False) labels for every pair.

    Undefined pairs are labelled accepted when ``undefined_accepted`` is True,
    matching how the paper folds them into the accepted counts.
    """
    labels = np.empty(len(pairs), dtype=bool)
    for i, pair in enumerate(pairs):
        if isinstance(pair, SequencePair):
            read, segment = pair.read, pair.reference_segment
        else:
            read, segment = pair
        if undefined_accepted and (contains_unknown(read) or contains_unknown(segment)):
            labels[i] = True
            continue
        labels[i] = edit_distance(read, segment) <= error_threshold
    return labels
