"""Banded (Ukkonen) edit-distance computation.

The verification stage of a read mapper only needs to know whether the edit
distance is within the error threshold ``e``; restricting the dynamic
programming to a diagonal band of half-width ``e`` reduces the work from
``O(n*m)`` to ``O(n*e)`` and is what mrFAST-style verifiers do in practice.
"""

from __future__ import annotations

__all__ = ["banded_edit_distance", "within_threshold"]

_INF = 1 << 30


def banded_edit_distance(a: str, b: str, band: int) -> int:
    """Edit distance if it is at most ``band``, otherwise ``band + 1``.

    The returned value is exact whenever it is ``<= band``; values above the
    band are truncated to ``band + 1`` (the caller only needs the comparison).
    """
    n, m = len(a), len(b)
    if band < 0:
        raise ValueError("band must be non-negative")
    if abs(n - m) > band:
        return band + 1
    if n == 0:
        return m if m <= band else band + 1
    if m == 0:
        return n if n <= band else band + 1

    previous = {j: j for j in range(0, min(m, band) + 1)}
    for i in range(1, n + 1):
        current: dict[int, int] = {}
        lo = max(0, i - band)
        hi = min(m, i + band)
        if lo == 0:
            current[0] = i
            lo = 1
        ai = a[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if ai == b[j - 1] else 1
            best = previous.get(j - 1, _INF) + cost
            up = previous.get(j, _INF) + 1
            left = current.get(j - 1, _INF) + 1
            current[j] = min(best, up, left)
        if min(current.values()) > band:
            return band + 1
        previous = current
    result = previous.get(m, _INF)
    return result if result <= band else band + 1


def within_threshold(a: str, b: str, threshold: int) -> bool:
    """True if the edit distance between ``a`` and ``b`` is at most ``threshold``."""
    return banded_edit_distance(a, b, threshold) <= threshold
