"""``python -m repro.serve``: run the daemon (same flags as ``repro serve``)."""

import sys

from .cli import serve_main

if __name__ == "__main__":
    sys.exit(serve_main())
