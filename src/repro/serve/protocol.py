"""Wire protocol of the filter-as-a-service daemon.

One request/response exchange per TCP connection, framed as a single
newline-terminated UTF-8 JSON object in each direction.  Every envelope —
request, success response, error response — is stamped with the canonical
``schema_version`` (the same version as the :class:`repro.api.Result` schema
the responses embed), and every failure is a *typed* error payload::

    {"schema_version": 1, "ok": false,
     "error": {"code": "queue_full", "message": "..."}}

so clients dispatch on ``error.code`` (machine-readable, closed vocabulary:
:data:`ERROR_CODES`) and humans read ``error.message`` (which names the
offending field, mirroring the :class:`~repro.api.Workload` validation
errors).  Three request operations exist:

``run``
    Execute a declarative workload dictionary on the server's resident
    :class:`~repro.api.Session`; the response carries the canonical
    :meth:`Result.as_dict` payload, re-serialisable to JSON byte-identical
    to a local ``repro run`` via :func:`canonical_result_json`.
``status``
    Per-client accounting and queue occupancy (answered inline, never
    queued, so it works while the request queue is full or draining).
``ping``
    Liveness probe.

All key spellings come from :mod:`repro._schema` (the ``result-schema-keys``
lint rule enforces this for the whole ``repro.serve`` package).
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass
from typing import Any, Mapping

from .. import _schema as K
from ..api.result import SCHEMA_VERSION

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_REQUEST_BYTES",
    "OPS",
    "REQUEST_FIELDS",
    "ERR_BAD_JSON",
    "ERR_BAD_REQUEST",
    "ERR_BAD_WORKLOAD",
    "ERR_PAYLOAD_TOO_LARGE",
    "ERR_TRUNCATED_FRAME",
    "ERR_TIMEOUT",
    "ERR_UNSUPPORTED_SCHEMA_VERSION",
    "ERR_QUEUE_FULL",
    "ERR_SHUTTING_DOWN",
    "ERR_INTERNAL",
    "ERR_CONNECTION_CLOSED",
    "ERROR_CODES",
    "ProtocolError",
    "Request",
    "parse_request",
    "request_envelope",
    "error_envelope",
    "run_envelope",
    "status_envelope",
    "ping_envelope",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "canonical_result_json",
]

#: Version of the request/response envelope; locked to the Result schema the
#: ``run`` responses embed, so one version number governs the whole wire.
PROTOCOL_VERSION = SCHEMA_VERSION

#: Default per-request frame-size ceiling (workload dictionaries are tiny; a
#: frame this large is a protocol violation, not a big job).
DEFAULT_MAX_REQUEST_BYTES = 1024 * 1024

#: Operations a request may name.
OPS = ("run", "status", "ping")

#: Top-level fields a request envelope may carry.
REQUEST_FIELDS = (K.SCHEMA_VERSION_KEY, K.OP, K.WORKLOAD, K.CLIENT)

#: Client label used when a request does not name one.
ANONYMOUS_CLIENT = "anonymous"

# --------------------------------------------------------------------------- #
# Typed error codes (the closed vocabulary of ``error.code``)
# --------------------------------------------------------------------------- #
ERR_BAD_JSON = "bad_json"
ERR_BAD_REQUEST = "bad_request"
ERR_BAD_WORKLOAD = "bad_workload"
ERR_PAYLOAD_TOO_LARGE = "payload_too_large"
ERR_TRUNCATED_FRAME = "truncated_frame"
ERR_TIMEOUT = "timeout"
ERR_UNSUPPORTED_SCHEMA_VERSION = "unsupported_schema_version"
ERR_QUEUE_FULL = "queue_full"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_INTERNAL = "internal_error"
#: Client-side only: the server went away without writing a response frame.
ERR_CONNECTION_CLOSED = "connection_closed"

ERROR_CODES = frozenset({
    ERR_BAD_JSON,
    ERR_BAD_REQUEST,
    ERR_BAD_WORKLOAD,
    ERR_PAYLOAD_TOO_LARGE,
    ERR_TRUNCATED_FRAME,
    ERR_TIMEOUT,
    ERR_UNSUPPORTED_SCHEMA_VERSION,
    ERR_QUEUE_FULL,
    ERR_SHUTTING_DOWN,
    ERR_INTERNAL,
    ERR_CONNECTION_CLOSED,
})


class ProtocolError(ValueError):
    """A request that cannot be executed, carrying its typed wire error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """A parsed, validated request envelope."""

    op: str
    client: str
    workload: "dict[str, Any] | None" = None


def parse_request(obj: Any) -> Request:
    """Validate a decoded request envelope, raising typed :class:`ProtocolError`.

    Error messages name the offending field (``request.op: ...``), mirroring
    the ``workload.<section>.<field>`` convention of
    :meth:`repro.api.Workload.from_dict`.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"request: expected a JSON object, got {type(obj).__name__}",
        )
    unknown = set(obj) - set(REQUEST_FIELDS)
    if unknown:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"request: unknown field(s) {sorted(unknown)} "
            f"(expected one of {sorted(REQUEST_FIELDS)})",
        )
    if K.SCHEMA_VERSION_KEY not in obj:
        raise ProtocolError(
            ERR_UNSUPPORTED_SCHEMA_VERSION,
            f"request.schema_version: field is required "
            f"(this server speaks version {PROTOCOL_VERSION})",
        )
    version = obj[K.SCHEMA_VERSION_KEY]
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERR_UNSUPPORTED_SCHEMA_VERSION,
            f"request.schema_version: unsupported version {version!r} "
            f"(this server speaks version {PROTOCOL_VERSION})",
        )
    op = obj.get(K.OP)
    if op not in OPS:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"request.op: unknown op {op!r} (expected one of {list(OPS)})",
        )
    client = obj.get(K.CLIENT, ANONYMOUS_CLIENT)
    if not isinstance(client, str) or not client:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"request.client: expected a non-empty string, got {client!r}",
        )
    workload = obj.get(K.WORKLOAD)
    if op == "run":
        if workload is None:
            raise ProtocolError(
                ERR_BAD_REQUEST, "request.workload: required for op 'run'"
            )
        if not isinstance(workload, dict):
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"request.workload: expected a JSON object, "
                f"got {type(workload).__name__}",
            )
    elif workload is not None:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"request.workload: only valid for op 'run' (op is {op!r})",
        )
    return Request(op=str(op), client=client, workload=workload)


# --------------------------------------------------------------------------- #
# Envelope builders
# --------------------------------------------------------------------------- #
def request_envelope(
    op: str,
    workload: "Mapping[str, Any] | None" = None,
    client: "str | None" = None,
) -> "dict[str, Any]":
    """A request envelope ready for :func:`encode_frame` (used by the client)."""
    envelope: dict[str, Any] = {K.SCHEMA_VERSION_KEY: PROTOCOL_VERSION, K.OP: op}
    if workload is not None:
        envelope[K.WORKLOAD] = dict(workload)
    if client is not None:
        envelope[K.CLIENT] = client
    return envelope


def error_envelope(code: str, message: str) -> "dict[str, Any]":
    """A typed failure response naming the problem."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    return {
        K.SCHEMA_VERSION_KEY: PROTOCOL_VERSION,
        K.OK: False,
        K.ERROR: {K.ERROR_CODE: code, K.ERROR_MESSAGE: message},
    }


def run_envelope(result: "Mapping[str, Any]") -> "dict[str, Any]":
    """A successful ``run`` response embedding a canonical Result dictionary."""
    return {
        K.SCHEMA_VERSION_KEY: PROTOCOL_VERSION,
        K.OK: True,
        K.OP: "run",
        K.RESULT: dict(result),
    }


def status_envelope(status: "Mapping[str, Any]") -> "dict[str, Any]":
    """A successful ``status`` response embedding the accounting payload."""
    return {
        K.SCHEMA_VERSION_KEY: PROTOCOL_VERSION,
        K.OK: True,
        K.OP: "status",
        K.STATUS: dict(status),
    }


def ping_envelope() -> "dict[str, Any]":
    """A successful ``ping`` response."""
    return {K.SCHEMA_VERSION_KEY: PROTOCOL_VERSION, K.OK: True, K.OP: "ping"}


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def encode_frame(obj: "Mapping[str, Any]") -> bytes:
    """Serialise one envelope as a compact newline-terminated JSON frame."""
    return (
        json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"
    )


def decode_frame(data: bytes) -> Any:
    """Parse one frame's bytes, raising a typed error for malformed JSON."""
    try:
        return json.loads(data.decode("utf-8", errors="replace"))
    except json.JSONDecodeError as exc:
        raise ProtocolError(ERR_BAD_JSON, f"invalid JSON frame: {exc}") from exc


def read_frame(
    sock: socket.socket, max_bytes: int = DEFAULT_MAX_REQUEST_BYTES
) -> "bytes | None":
    """Read one newline-terminated frame from a socket.

    Returns ``None`` when the peer closes the connection without sending
    anything; raises a typed :class:`ProtocolError` for a frame truncated by
    EOF (``truncated_frame``), a frame exceeding ``max_bytes``
    (``payload_too_large``) or a socket timeout (``timeout``).
    """
    buffer = bytearray()
    while True:
        newline = buffer.find(b"\n")
        if newline >= 0:
            if newline > max_bytes:
                raise ProtocolError(
                    ERR_PAYLOAD_TOO_LARGE,
                    f"frame of {newline} bytes exceeds the {max_bytes}-byte "
                    "request ceiling",
                )
            return bytes(buffer[:newline])
        if len(buffer) > max_bytes:
            raise ProtocolError(
                ERR_PAYLOAD_TOO_LARGE,
                f"frame exceeds the {max_bytes}-byte request ceiling "
                "before its terminating newline",
            )
        try:
            chunk = sock.recv(65536)
        except TimeoutError as exc:
            raise ProtocolError(
                ERR_TIMEOUT,
                f"timed out waiting for a complete frame "
                f"({len(buffer)} bytes received, no terminating newline)",
            ) from exc
        if not chunk:
            if not buffer:
                return None
            raise ProtocolError(
                ERR_TRUNCATED_FRAME,
                f"connection closed mid-frame after {len(buffer)} bytes "
                "(frames are newline-terminated JSON objects)",
            )
        buffer += chunk


def canonical_result_json(result: "Mapping[str, Any]") -> str:
    """Serialise a transported Result dictionary exactly like ``repro run``.

    This is the same formatting contract as :meth:`repro.api.Result.to_json`
    (2-space indent, sorted keys, trailing newline); JSON round-trips floats
    exactly, so a daemon response printed through this function is
    byte-identical to the local ``repro run`` output for the same workload
    (locked down by ``tests/test_serve_concurrency.py``).
    """
    return json.dumps(dict(result), indent=2, sort_keys=True) + "\n"
