"""``repro serve`` / ``repro submit``: the daemon and its submission CLI.

``repro serve --host --port --workers --queue-depth`` runs a resident
:class:`~repro.serve.server.ReproServer` in the foreground until SIGTERM or
SIGINT, then drains gracefully (in-flight and queued requests complete, new
ones are rejected with ``shutting_down``, the session's executor pools are
released).

``repro submit workload.toml --host --port`` submits a declarative workload
file to a live daemon and prints the canonical JSON report — byte-identical
to ``repro run workload.toml`` executed locally.  ``--status`` queries the
daemon's per-client accounting instead.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path
from typing import Any, Sequence

from . import protocol as P
from .client import ServeClient, ServeError
from .server import DEFAULT_QUEUE_DEPTH, ReproServer

__all__ = ["serve_main", "submit_main", "DEFAULT_PORT"]

#: Default daemon port (an unassigned user port; override with --port).
DEFAULT_PORT = 8765


def _add_endpoint_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", help="daemon address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"daemon port (default: {DEFAULT_PORT})",
    )


# --------------------------------------------------------------------------- #
# repro serve
# --------------------------------------------------------------------------- #
def serve_main(argv: "Sequence[str] | None" = None) -> int:
    """Run the resident filter-as-a-service daemon in the foreground."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Long-running filter-as-a-service daemon: one resident Session "
            "(warm engines, cached datasets/indexes) serving concurrent "
            "workload submissions with bounded-queue backpressure"
        ),
    )
    _add_endpoint_flags(parser)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker threads executing queued workloads (default: 1)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=DEFAULT_QUEUE_DEPTH,
        help=(
            "bounded request-queue capacity; further submissions are "
            f"rejected with queue_full (default: {DEFAULT_QUEUE_DEPTH})"
        ),
    )
    parser.add_argument(
        "--max-request-bytes", type=int, default=P.DEFAULT_MAX_REQUEST_BYTES,
        help="per-request frame ceiling (default: %(default)s)",
    )
    parser.add_argument(
        "--kernel-tier",
        choices=["auto", "numpy", "native"],
        default=None,
        help=(
            "daemon-wide kernel tier applied to workloads that left "
            "execution.kernel_tier at 'auto' (default: no override)"
        ),
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help=(
            "write a JSON {host, port, pid} file once listening "
            "(lets supervisors and tests discover a --port 0 binding)"
        ),
    )
    parser.add_argument(
        "--planner-sample-pairs", type=int, default=None, metavar="N",
        help=(
            "daemon-wide planner probe size for filter='auto' workloads "
            "without their own [filter.planner] section (default: no override)"
        ),
    )
    parser.add_argument(
        "--planner-budget", type=float, default=None, metavar="FRACTION",
        help=(
            "daemon-wide planner false-accept budget in [0, 1] for "
            "filter='auto' workloads without their own [filter.planner] "
            "section (default: no override)"
        ),
    )
    parser.add_argument(
        "--planner-max-stages", type=int, default=None, metavar="N",
        help=(
            "daemon-wide cap (1-3) on planned cascade length for "
            "filter='auto' workloads without their own [filter.planner] "
            "section (default: no override)"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.queue_depth < 1:
        parser.error("--queue-depth must be at least 1")
    if args.max_request_bytes < 1:
        parser.error("--max-request-bytes must be at least 1")
    planner_defaults: "dict[str, Any] | None" = None
    planner_flags = {
        "sample_pairs": args.planner_sample_pairs,
        "false_accept_budget": args.planner_budget,
        "max_stages": args.planner_max_stages,
    }
    if any(value is not None for value in planner_flags.values()):
        planner_defaults = {
            key: value for key, value in planner_flags.items() if value is not None
        }

    try:
        server = ReproServer(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            max_request_bytes=args.max_request_bytes,
            kernel_tier=args.kernel_tier,
            planner_defaults=planner_defaults,
        )
    except ValueError as exc:  # bad planner defaults, validated at construction
        parser.error(str(exc))
    try:
        server.start()
    except OSError as exc:
        parser.error(f"cannot listen on {args.host}:{args.port}: {exc}")

    def _on_signal(signum: int, _frame: Any) -> None:
        print(
            f"repro serve: received {signal.Signals(signum).name}, draining...",
            file=sys.stderr,
            flush=True,
        )
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    print(
        f"repro serve: listening on {server.host}:{server.port} "
        f"(workers={server.workers}, queue_depth={server.queue_depth}, "
        f"schema_version={P.PROTOCOL_VERSION})",
        flush=True,
    )
    if args.ready_file:
        try:
            Path(args.ready_file).write_text(
                json.dumps(
                    {"host": server.host, "port": server.port, "pid": os.getpid()}
                )
                + "\n"
            )
        except OSError as exc:
            server.stop(drain=False)
            parser.error(f"--ready-file: {exc}")

    # Event.wait in a loop: signals interrupt the main thread between waits,
    # so a SIGTERM is never stuck behind a long uninterruptible block.
    while not server.wait_for_shutdown(timeout=0.5):
        pass
    server.stop(drain=True)
    print("repro serve: drained and stopped", file=sys.stderr, flush=True)
    return 0


# --------------------------------------------------------------------------- #
# repro submit
# --------------------------------------------------------------------------- #
def submit_main(argv: "Sequence[str] | None" = None) -> int:
    """Submit a workload file to a live daemon (or query its status)."""
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit a declarative TOML/JSON workload to a live `repro serve` "
            "daemon; prints the canonical JSON report, byte-identical to "
            "local `repro run`"
        ),
    )
    parser.add_argument(
        "workload", nargs="?", default=None,
        help="path to a .toml or .json workload file",
    )
    _add_endpoint_flags(parser)
    parser.add_argument(
        "--client", default=None, metavar="ID",
        help="client label for the daemon's per-client accounting",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="socket timeout in seconds (default: 120)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help=(
            "total submission attempts when the daemon answers queue_full "
            "(default: 1 — surface backpressure immediately)"
        ),
    )
    parser.add_argument(
        "--status", action="store_true",
        help="print the daemon's accounting payload instead of submitting",
    )
    parser.add_argument(
        "--ping", action="store_true",
        help="liveness-check the daemon instead of submitting",
    )
    args = parser.parse_args(argv)
    if args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.retries < 1:
        parser.error("--retries must be at least 1")
    if not args.status and not args.ping and args.workload is None:
        parser.error("a workload file is required (or pass --status / --ping)")

    client = ServeClient(
        host=args.host, port=args.port, client_id=args.client, timeout_s=args.timeout
    )
    try:
        if args.ping:
            client.ping()
            print(f"repro submit: {args.host}:{args.port} is alive")
            return 0
        if args.status:
            sys.stdout.write(
                json.dumps(client.status(), indent=2, sort_keys=True) + "\n"
            )
            return 0
        result, _rejections = client.run_with_retry(
            args.workload, attempts=args.retries
        )
        sys.stdout.write(P.canonical_result_json(result))
        return 0
    except ServeError as exc:
        print(f"repro submit: {exc.code}: {exc.message}", file=sys.stderr)
        return 1
    except ValueError as exc:  # local workload-file validation
        parser.error(str(exc))
