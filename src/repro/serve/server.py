"""The resident filter-as-a-service daemon.

:class:`ReproServer` holds one long-lived :class:`~repro.api.Session` — warm
engines, cached encoded datasets, reference indexes — and serves concurrent
workload submissions over the newline-framed JSON protocol of
:mod:`repro.serve.protocol`.  The design is queue-centred:

* every ``run`` request is parsed and validated on its connection's handler
  thread, then enqueued into a **bounded** request queue
  (``queue_depth`` slots).  A full queue rejects the request *immediately*
  with a typed ``queue_full`` error — explicit backpressure, never unbounded
  buffering, never a hung client;
* ``workers`` worker threads drain the queue and execute
  :meth:`Session.run` on the shared resident session (runs are pure with
  respect to the session caches, and the caches themselves are lock-guarded,
  so concurrent workers produce byte-identical results to a serial run —
  hammered by ``tests/test_serve_concurrency.py``);
* ``status`` / ``ping`` requests are answered inline on the handler thread,
  so observability keeps working while the queue is full or draining;
* shutdown (:meth:`request_shutdown`, wired to SIGTERM by ``repro serve``)
  is graceful: new ``run`` requests are rejected with ``shutting_down``,
  queued and in-flight requests complete and deliver their responses, and
  :meth:`Session.close` releases every pooled executor (leaving
  ``live_segments == 0`` on the process backend).

Per-client accounting (requests, completions, rejections, failures, pairs
filtered, measured run wall time) is kept for every ``client`` label a
request carries and served by the ``status`` operation.
"""

from __future__ import annotations

import dataclasses
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any

from .. import _schema as K
from ..api.session import Session
from ..api.workload import PlannerSpec, Workload
from ..filters.native import validate_tier
from . import protocol as P

__all__ = ["ReproServer", "DEFAULT_QUEUE_DEPTH", "DEFAULT_REQUEST_TIMEOUT_S"]

#: Default bounded-queue depth (pending ``run`` requests beyond the in-flight
#: ones; the 429-style backpressure threshold).
DEFAULT_QUEUE_DEPTH = 8

#: How long a connection may dawdle before its read is abandoned.
DEFAULT_REQUEST_TIMEOUT_S = 30.0


@dataclass
class _ClientStats:
    """Accounting for one client label (guarded by the server's stats lock)."""

    requests: int = 0
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    pairs_filtered: int = 0
    run_time_s: float = 0.0

    def as_dict(self) -> "dict[str, Any]":
        return {
            K.REQUESTS: self.requests,
            K.COMPLETED: self.completed,
            K.REJECTED: self.rejected,
            K.FAILED: self.failed,
            K.PAIRS_FILTERED: self.pairs_filtered,
            K.RUN_TIME_S: round(self.run_time_s, 6),
        }


@dataclass
class _Job:
    """One queued ``run`` request; the worker owns the connection."""

    workload: Workload
    client: str
    conn: socket.socket


class ReproServer:
    """A resident ``repro serve`` daemon (see module docstring).

    Parameters
    ----------
    host / port:
        Listen address; ``port=0`` binds an ephemeral port (read it back from
        :attr:`port` — the test suites and benchmarks do this).
    workers:
        Worker threads draining the request queue (concurrent
        :meth:`Session.run` executions).
    queue_depth:
        Bounded queue capacity; a ``run`` arriving while ``queue_depth``
        requests are already pending is rejected with ``queue_full``.
    max_request_bytes:
        Per-frame size ceiling (typed ``payload_too_large`` beyond it).
    session:
        An existing resident :class:`Session` to serve from; by default the
        server builds (and owns) a fresh one.  Either way :meth:`stop` calls
        :meth:`Session.close` — that only releases executor pools, the
        construction caches survive.
    kernel_tier:
        Daemon-wide default kernel tier.  Submitted workloads that left
        ``execution.kernel_tier`` at ``"auto"`` run with this tier instead; a
        workload that pinned ``"numpy"`` or ``"native"`` explicitly keeps its
        own choice.  ``None`` (the default) applies no override.
    planner_defaults:
        Daemon-wide ``[filter.planner]`` defaults (a mapping with
        ``sample_pairs`` / ``false_accept_budget`` / ``max_stages`` /
        ``candidates`` keys, validated at construction).  Submitted
        ``filter = "auto"`` workloads that carry no ``planner`` section of
        their own plan with these knobs; workloads with an explicit planner
        section keep their own.  Because the resident session caches plans by
        (input identity, threshold, planner knobs), repeated ``auto``
        submissions for the same data plan exactly once.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_request_bytes: int = P.DEFAULT_MAX_REQUEST_BYTES,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        session: "Session | None" = None,
        kernel_tier: "str | None" = None,
        planner_defaults: "dict[str, Any] | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if max_request_bytes < 1:
            raise ValueError("max_request_bytes must be at least 1")
        if kernel_tier is not None:
            validate_tier(kernel_tier)
        self.kernel_tier = kernel_tier
        self.planner_defaults: "PlannerSpec | None" = None
        if planner_defaults is not None:
            from ..api.workload import _build_section

            # Validate once, at daemon construction — a bad default should
            # kill the server at startup, not every request at submit time.
            self.planner_defaults = _build_section(
                PlannerSpec, "filter.planner", planner_defaults
            )
        self.host = host
        self.workers = int(workers)
        self.queue_depth = int(queue_depth)
        self.max_request_bytes = int(max_request_bytes)
        self.request_timeout_s = float(request_timeout_s)
        self.session = session if session is not None else Session()
        self._requested_port = int(port)
        self._port: "int | None" = None
        self._listener: "socket.socket | None" = None
        self._queue: "queue.Queue[_Job | None]" = queue.Queue(maxsize=queue_depth)
        self._stats: "dict[str, _ClientStats]" = {}
        self._stats_lock = threading.Lock()
        self._in_flight = 0
        self._draining = threading.Event()
        self._shutdown_requested = threading.Event()
        self._worker_threads: "list[threading.Thread]" = []
        self._accept_thread: "threading.Thread | None" = None
        self._started = False
        self._stopped = False
        self._start_clock = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._port is None:
            raise RuntimeError("server has not been started")
        return self._port

    @property
    def draining(self) -> bool:
        """Whether graceful shutdown has begun (new runs are rejected)."""
        return self._draining.is_set()

    def start(self) -> "ReproServer":
        """Bind the listener and launch the accept/worker threads."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._listener = socket.create_server(
            (self.host, self._requested_port), backlog=128
        )
        self._port = int(self._listener.getsockname()[1])
        self._start_clock = time.perf_counter()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}", daemon=True
            )
            thread.start()
            self._worker_threads.append(thread)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (the SIGTERM entry point).

        New ``run`` requests are rejected with ``shutting_down`` from this
        moment; queued and in-flight requests still complete.  The actual
        drain happens in :meth:`stop` (which ``repro serve`` calls once
        :meth:`wait_for_shutdown` returns).
        """
        self._draining.set()
        self._shutdown_requested.set()

    def wait_for_shutdown(self, timeout: "float | None" = None) -> bool:
        """Block until :meth:`request_shutdown` is called (or timeout)."""
        return self._shutdown_requested.wait(timeout)

    def stop(self, drain: bool = True) -> None:
        """Drain and shut down: workers join, listener closes, session closes.

        ``drain=True`` (the graceful path) lets every queued request execute
        and deliver its response first; ``drain=False`` answers queued
        requests with ``shutting_down`` instead.  Idempotent.  In-flight
        requests complete under both modes — workers are joined, never
        killed.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining.set()
        self._shutdown_requested.set()
        if not drain:
            self._flush_queue()
        # One sentinel per worker; blocking puts are safe because only
        # sentinels enter the queue now (handlers reject during draining)
        # and the workers keep consuming.
        for _ in self._worker_threads:
            self._queue.put(None)
        for thread in self._worker_threads:
            thread.join()
        # A handler racing request_shutdown() may have enqueued a job after
        # the drain check but after the workers exited; answer it now rather
        # than leaving its client hanging.
        self._flush_queue()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.session.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _flush_queue(self) -> None:
        """Answer every still-queued job with ``shutting_down``."""
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            if job is None:
                continue
            self._record_rejection(job.client)
            self._respond(
                job.conn,
                P.error_envelope(
                    P.ERR_SHUTTING_DOWN,
                    "server is shutting down; the request was not executed",
                ),
            )

    # ------------------------------------------------------------------ #
    # Accept / connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:  # listener closed: shutdown
                return
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        """Read, validate and dispatch one request (one exchange per conn)."""
        handed_off = False
        try:
            conn.settimeout(self.request_timeout_s)
            try:
                frame = P.read_frame(conn, self.max_request_bytes)
                if frame is None:  # peer connected and left silently
                    return
                request = P.parse_request(P.decode_frame(frame))
            except P.ProtocolError as exc:
                self._respond(conn, P.error_envelope(exc.code, exc.message), close=False)
                return
            if request.op == "ping":
                self._respond(conn, P.ping_envelope(), close=False)
            elif request.op == "status":
                self._respond(
                    conn, P.status_envelope(self.status_payload()), close=False
                )
            else:
                handed_off = self._submit_run(request, conn)
        finally:
            if not handed_off:
                self._close(conn)

    def _submit_run(self, request: P.Request, conn: socket.socket) -> bool:
        """Enqueue a validated ``run`` (or reject it); True if a worker owns
        the connection now."""
        client = request.client
        with self._stats_lock:
            stats = self._stats.setdefault(client, _ClientStats())
            stats.requests += 1
        if self._draining.is_set():
            self._record_rejection(client)
            self._respond(
                conn,
                P.error_envelope(
                    P.ERR_SHUTTING_DOWN,
                    "server is shutting down and no longer accepts workloads",
                ),
                close=False,
            )
            return False
        try:
            workload = Workload.from_dict(request.workload or {})
        except (ValueError, KeyError, TypeError) as exc:
            with self._stats_lock:
                self._stats[client].failed += 1
            self._respond(
                conn, P.error_envelope(P.ERR_BAD_WORKLOAD, str(exc)), close=False
            )
            return False
        if self.kernel_tier is not None and workload.execution.kernel_tier == "auto":
            # Daemon-wide default; explicit numpy/native pins in the workload win.
            workload = workload.replace(
                execution=dataclasses.replace(
                    workload.execution, kernel_tier=self.kernel_tier
                )
            )
        if (
            self.planner_defaults is not None
            and workload.filter.is_auto
            and workload.filter.planner is None
        ):
            # Daemon-wide planner knobs; an explicit [filter.planner] wins.
            workload = workload.replace(
                filter=dataclasses.replace(
                    workload.filter, planner=self.planner_defaults
                )
            )
        job = _Job(workload=workload, client=client, conn=conn)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._record_rejection(client)
            self._respond(
                conn,
                P.error_envelope(
                    P.ERR_QUEUE_FULL,
                    f"request queue is full ({self.queue_depth} pending); "
                    "back off and retry",
                ),
                close=False,
            )
            return False
        return True

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            with self._stats_lock:
                self._in_flight += 1
            try:
                self._execute(job)
            finally:
                with self._stats_lock:
                    self._in_flight -= 1
                self._queue.task_done()

    def _execute(self, job: _Job) -> None:
        start = time.perf_counter()
        try:
            result = self.session.run(job.workload)
        except Exception as exc:  # typed envelope, never a dead connection
            with self._stats_lock:
                self._stats[job.client].failed += 1
            self._respond(
                job.conn,
                P.error_envelope(P.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"),
            )
            return
        elapsed = time.perf_counter() - start
        payload = result.as_dict()
        with self._stats_lock:
            stats = self._stats[job.client]
            stats.completed += 1
            stats.pairs_filtered += int(result.summary.get(K.N_PAIRS, 0))
            stats.run_time_s += elapsed
        self._respond(job.conn, P.run_envelope(payload))

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def _record_rejection(self, client: str) -> None:
        with self._stats_lock:
            self._stats.setdefault(client, _ClientStats()).rejected += 1

    def status_payload(self) -> "dict[str, Any]":
        """The ``status`` operation's accounting payload."""
        with self._stats_lock:
            clients = {
                name: self._stats[name].as_dict() for name in sorted(self._stats)
            }
            in_flight = self._in_flight
        totals = _ClientStats()
        for row in clients.values():
            totals.requests += int(row[K.REQUESTS])
            totals.completed += int(row[K.COMPLETED])
            totals.rejected += int(row[K.REJECTED])
            totals.failed += int(row[K.FAILED])
            totals.pairs_filtered += int(row[K.PAIRS_FILTERED])
            totals.run_time_s += float(row[K.RUN_TIME_S])
        return {
            K.SCHEMA_VERSION_KEY: P.PROTOCOL_VERSION,
            K.DRAINING: self._draining.is_set(),
            K.WORKERS: self.workers,
            K.QUEUE_DEPTH: self.queue_depth,
            K.QUEUED: self._queue.qsize(),
            K.IN_FLIGHT: in_flight,
            K.UPTIME_S: round(time.perf_counter() - self._start_clock, 3),
            K.TOTALS: totals.as_dict(),
            K.CLIENTS: clients,
        }

    # ------------------------------------------------------------------ #
    # Socket helpers
    # ------------------------------------------------------------------ #
    def _respond(
        self, conn: socket.socket, envelope: "dict[str, Any]", close: bool = True
    ) -> None:
        """Best-effort single-frame response (a vanished client is not an
        error worth tearing the server down for)."""
        try:
            conn.sendall(P.encode_frame(envelope))
        except OSError:
            pass
        finally:
            if close:
                self._close(conn)

    @staticmethod
    def _close(conn: socket.socket) -> None:
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
