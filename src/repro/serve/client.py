"""Client side of the filter-as-a-service protocol.

:class:`ServeClient` speaks the newline-framed JSON envelope of
:mod:`repro.serve.protocol` to a live ``repro serve`` daemon: one connection
per exchange, typed errors raised as :class:`ServeError` subclasses keyed by
the wire ``error.code`` (``queue_full`` becomes :class:`QueueFullError`, the
retryable backpressure signal).  :meth:`ServeClient.run_json` returns the
canonical report serialisation — byte-identical to a local
``repro run workload.toml`` for the same workload.
"""

from __future__ import annotations

import json
import random
import socket
import time
from pathlib import Path
from typing import Any, Mapping

from .. import _schema as K
from ..api.workload import Workload
from . import protocol as P

__all__ = [
    "ServeError",
    "QueueFullError",
    "ShuttingDownError",
    "ServeClient",
    "backoff_schedule",
    "load_workload_mapping",
]


def backoff_schedule(
    attempts: int,
    backoff_s: float = 0.05,
    client_id: "str | None" = None,
) -> "list[float]":
    """The ``queue_full`` retry delays for a client: jittered linear backoff.

    ``delay[k] = backoff_s * min(k + 1, 8) * (0.5 + u_k)`` with ``u_k`` drawn
    from a PRNG seeded by ``client_id`` — deterministic per client (the
    schedule is reproducible and unit-testable) yet different across clients,
    so a burst of rejected submitters spreads out instead of re-hitting the
    daemon in lockstep.  Returns ``attempts - 1`` delays (no sleep after the
    final attempt).
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    rng = random.Random(f"repro-serve-backoff:{client_id or ''}")
    return [
        backoff_s * min(k + 1, 8) * (0.5 + rng.random())
        for k in range(attempts - 1)
    ]


class ServeError(RuntimeError):
    """A typed failure envelope from the daemon (or a transport failure)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class QueueFullError(ServeError):
    """Backpressure: the daemon's bounded request queue is full; retryable."""


class ShuttingDownError(ServeError):
    """The daemon is draining and no longer accepts workloads."""


_ERROR_TYPES: "dict[str, type[ServeError]]" = {
    P.ERR_QUEUE_FULL: QueueFullError,
    P.ERR_SHUTTING_DOWN: ShuttingDownError,
}


def _error_from_envelope(envelope: "Mapping[str, Any]") -> ServeError:
    error = envelope.get(K.ERROR)
    if not isinstance(error, dict):
        return ServeError(
            P.ERR_BAD_JSON, f"malformed error envelope: {envelope!r}"
        )
    code = str(error.get(K.ERROR_CODE, P.ERR_INTERNAL))
    message = str(error.get(K.ERROR_MESSAGE, ""))
    return _ERROR_TYPES.get(code, ServeError)(code, message)


def load_workload_mapping(path: "str | Path") -> "dict[str, Any]":
    """Parse a ``.toml`` / ``.json`` workload file to the raw mapping.

    ``repro submit`` sends exactly what ``repro run`` would feed to
    :meth:`Workload.from_dict`, so the daemon executes the byte-identical
    workload.  The mapping is validated locally first (catching bad files
    before they travel).
    """
    import tomllib

    path = Path(path)
    suffix = path.suffix.lower()
    if not path.exists():
        raise ValueError(f"{path}: workload file not found")
    if suffix == ".toml":
        try:
            data: Any = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{path}: invalid TOML: {exc}") from exc
    elif suffix == ".json":
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSON: {exc}") from exc
    else:
        raise ValueError(
            f"{path}: unrecognised workload suffix {suffix!r} "
            "(expected .toml or .json)"
        )
    Workload.from_dict(data)  # local validation: fail fast with field names
    if not isinstance(data, dict):  # pragma: no cover - from_dict already raised
        raise ValueError(f"{path}: expected a table/object")
    return data


class ServeClient:
    """Submit workloads to (and query) a live ``repro serve`` daemon.

    Parameters
    ----------
    host / port:
        The daemon's listen address.
    client_id:
        Label carried on every request for the daemon's per-client
        accounting (``status`` reports it back).
    timeout_s:
        Socket timeout for connect/send/receive; a hung daemon surfaces as a
        typed ``timeout`` :class:`ServeError`, never a hung client.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        client_id: "str | None" = None,
        timeout_s: float = 60.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.client_id = client_id
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _roundtrip(self, request: "dict[str, Any]") -> "dict[str, Any]":
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            ) as conn:
                conn.settimeout(self.timeout_s)
                conn.sendall(P.encode_frame(request))
                frame = P.read_frame(conn, max_bytes=1 << 30)
        except P.ProtocolError as exc:
            raise ServeError(exc.code, exc.message) from exc
        except TimeoutError as exc:
            raise ServeError(
                P.ERR_TIMEOUT, f"no response from {self.host}:{self.port}: {exc}"
            ) from exc
        except OSError as exc:
            raise ServeError(
                P.ERR_CONNECTION_CLOSED,
                f"cannot reach {self.host}:{self.port}: {exc}",
            ) from exc
        if frame is None:
            raise ServeError(
                P.ERR_CONNECTION_CLOSED,
                f"{self.host}:{self.port} closed the connection without responding",
            )
        envelope = P.decode_frame(frame)
        if not isinstance(envelope, dict) or K.OK not in envelope:
            raise ServeError(
                P.ERR_BAD_JSON, f"malformed response envelope: {envelope!r}"
            )
        if not envelope[K.OK]:
            raise _error_from_envelope(envelope)
        return envelope

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def run(
        self, workload: "Mapping[str, Any] | Workload | str | Path"
    ) -> "dict[str, Any]":
        """Execute one workload on the daemon; returns the Result dictionary.

        ``workload`` may be a raw workload mapping, a constructed
        :class:`Workload`, or a path to a ``.toml`` / ``.json`` file.
        """
        if isinstance(workload, Workload):
            payload = workload.to_dict()
        elif isinstance(workload, (str, Path)):
            payload = load_workload_mapping(workload)
        else:
            payload = dict(workload)
        envelope = self._roundtrip(
            P.request_envelope("run", workload=payload, client=self.client_id)
        )
        result = envelope.get(K.RESULT)
        if not isinstance(result, dict):
            raise ServeError(
                P.ERR_BAD_JSON, f"run response carries no result: {envelope!r}"
            )
        return result

    def run_json(
        self, workload: "Mapping[str, Any] | Workload | str | Path"
    ) -> str:
        """Like :meth:`run`, serialised byte-identically to ``repro run``."""
        return P.canonical_result_json(self.run(workload))

    def run_with_retry(
        self,
        workload: "Mapping[str, Any] | Workload | str | Path",
        attempts: int = 10,
        backoff_s: float = 0.05,
        max_elapsed_s: float = 30.0,
    ) -> "tuple[dict[str, Any], int]":
        """Run with bounded retries on ``queue_full`` backpressure.

        Returns ``(result, rejections)`` — how many times the daemon pushed
        back before accepting.  Retry delays come from
        :func:`backoff_schedule` (jitter seeded by ``client_id``, so
        simultaneously-rejected clients don't retry in lockstep).  Raises
        :class:`QueueFullError` once ``attempts`` submissions have all been
        rejected, or as soon as the next sleep would push the total retry
        time past ``max_elapsed_s``.
        """
        delays = backoff_schedule(attempts, backoff_s, self.client_id)
        started = time.monotonic()
        rejections = 0
        while True:
            try:
                return self.run(workload), rejections
            except QueueFullError:
                rejections += 1
                if rejections >= attempts:
                    raise
                delay = delays[rejections - 1]
                if time.monotonic() - started + delay > max_elapsed_s:
                    raise
                time.sleep(delay)

    def status(self) -> "dict[str, Any]":
        """The daemon's accounting payload (queue occupancy, per-client totals)."""
        envelope = self._roundtrip(
            P.request_envelope("status", client=self.client_id)
        )
        status = envelope.get(K.STATUS)
        if not isinstance(status, dict):
            raise ServeError(
                P.ERR_BAD_JSON, f"status response carries no payload: {envelope!r}"
            )
        return status

    def ping(self) -> bool:
        """Liveness probe; True when the daemon answers."""
        envelope = self._roundtrip(P.request_envelope("ping", client=self.client_id))
        return bool(envelope[K.OK])
