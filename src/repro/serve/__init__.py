"""Filter-as-a-service: the resident ``repro serve`` daemon and its client.

The package turns the resident :class:`~repro.api.Session` (warm engines,
cached encoded datasets, reference indexes — the ~27x reuse win measured by
``BENCH_api_overhead``) into a long-running network service:

:mod:`repro.serve.protocol`
    The wire format: newline-framed JSON envelopes versioned with the
    :class:`~repro.api.Result` ``schema_version``, typed error payloads.
:mod:`repro.serve.server`
    :class:`ReproServer`: bounded request queue with explicit ``queue_full``
    backpressure, worker threads over one shared session, per-client
    accounting, graceful drain-on-SIGTERM shutdown.
:mod:`repro.serve.client`
    :class:`ServeClient` and the typed :class:`ServeError` hierarchy;
    ``run_json`` output is byte-identical to local ``repro run``.
:mod:`repro.serve.cli`
    The ``repro serve`` / ``repro submit`` commands.
"""

from .client import QueueFullError, ServeClient, ServeError, ShuttingDownError
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import DEFAULT_QUEUE_DEPTH, ReproServer

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_QUEUE_DEPTH",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "QueueFullError",
    "ShuttingDownError",
    "ProtocolError",
]
