"""The adaptive cascade planner behind ``filter = "auto"``.

The six registered filters trade accept-rate against speed *on the data at
hand* — a low-edit workload rewards the tightest filter, a high-edit one the
cheapest — so the optimal choice is input-dependent.  This module makes that
choice automatically and deterministically:

1. **Probe.**  Sample a fixed prefix of the input's pair stream (at most
   ``[filter.planner].sample_pairs`` pairs; the prefix is a pure function of
   the input spec, so the memory and streaming paths — and every shard
   planner — see the same probe) and run every filter that appears in a
   candidate cascade over it once via the ordinary
   :meth:`~repro.engine.engine.FilterEngine.filter_encoded` path, recording
   each filter's boolean accept mask.
2. **Search.**  Enumerate candidate cascades (each single filter plus every
   cost-ascending 2-stage — and, with ``max_stages = 3``, 3-stage —
   combination, or the explicit ``candidates`` list) and score each with the
   cost model

   ``est_cost = probe_cost + Σ_stages (predicted_stage_input ×
   filter_cost_per_pair) + modelled_verification(est_accepts)``

   where per-filter costs are the calibrated constants of
   :data:`repro._defaults.FILTER_COST_PER_PAIR_S` (scaled linearly with read
   length), predicted stage inputs scale the probe's running survivor counts
   to the input total with deterministic integer rounding, and the
   verification term is the same analytic model the pipeline reports
   (:func:`repro.exec.reduce.modelled_verification_times`).  Because every
   filter under-estimates edits, a cascade's accept set is the intersection
   of its stages' accept masks — measured exactly on the probe.
3. **Budget.**  A candidate is *admissible* when its probe accept count
   exceeds the tightest candidate's by at most ``false_accept_budget ×
   probe_pairs``.  The plan is the cheapest admissible candidate
   (ties break toward fewer stages, then lexicographic names).

The chosen :class:`Plan` is frozen into the workload
(:func:`resolve_workload`) as the concrete cascade plus a ``filter.plan``
record, *before* any executor fan-out or shard file exists — so the decision
is byte-identical across backends, worker counts, shard counts and modes.
Timing never enters the decision: costs are model constants and accept
masks are deterministic per-pair decisions, which is what makes the plan
reproducible across hosts.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from .. import _schema as K
from .._defaults import FILTER_COST_PER_PAIR_S
from ..api.workload import FilterSpec, PlannerSpec, Workload

if TYPE_CHECKING:
    from ..api.session import Session

__all__ = [
    "PLANNER_VERSION",
    "CandidateEstimate",
    "Plan",
    "plan_cache_key",
    "plan_workload",
    "resolve_workload",
    "filter_cost_per_pair",
]

#: Version stamp carried by every plan record; bump on any change to the
#: cost model, candidate generation or tie-breaking so recorded plans are
#: comparable only within a version.
PLANNER_VERSION = 1


def filter_cost_per_pair(name: str, read_length: int) -> float:
    """Calibrated per-pair cost of one filter at a read length (seconds)."""
    return FILTER_COST_PER_PAIR_S[name] * (read_length / 100.0)


def _scaled(count: int, total: int, probe_n: int) -> int:
    """Scale a probe count to the input total with deterministic rounding."""
    return (count * total + probe_n // 2) // probe_n


@dataclass(frozen=True)
class CandidateEstimate:
    """One scored candidate cascade."""

    cascade: tuple[str, ...]
    probe_accepts: int
    est_accepts: int
    est_cost_s: float
    admissible: bool
    chosen: bool = False

    def as_dict(self) -> "dict[str, Any]":
        return {
            K.CASCADE: list(self.cascade),
            K.PROBE_ACCEPTS: self.probe_accepts,
            K.EST_ACCEPTS: self.est_accepts,
            K.EST_COST_S: self.est_cost_s,
            K.ADMISSIBLE: self.admissible,
            K.CHOSEN: self.chosen,
        }


@dataclass(frozen=True)
class Plan:
    """The frozen outcome of one planning pass."""

    cascade: tuple[str, ...]
    probe_pairs: int
    probe_cost_s: float
    est_cost_s: float
    est_accepts: int
    total_pairs: int
    read_length: int
    spec: PlannerSpec
    candidates: tuple[CandidateEstimate, ...]

    def record(self) -> "dict[str, Any]":
        """The JSON-shaped ``filter.plan`` record a resolved workload carries."""
        rec: dict[str, Any] = {
            K.PLANNER_VERSION: PLANNER_VERSION,
            K.CASCADE: list(self.cascade),
            K.PROBE_PAIRS: self.probe_pairs,
            K.PROBE_COST_S: self.probe_cost_s,
            K.EST_COST_S: self.est_cost_s,
            K.EST_ACCEPTS: self.est_accepts,
            K.SAMPLE_PAIRS: self.spec.sample_pairs,
            K.FALSE_ACCEPT_BUDGET: self.spec.false_accept_budget,
            K.MAX_STAGES: self.spec.max_stages,
            K.CANDIDATES: [candidate.as_dict() for candidate in self.candidates],
        }
        # A JSON round trip canonicalises the shapes (tuples -> lists) so the
        # record compares equal however it travelled — in memory, through a
        # shard workload file, or back out of a merged Result.
        out: dict[str, Any] = json.loads(json.dumps(rec, sort_keys=True))
        return out


# --------------------------------------------------------------------------- #
# Cache keys
# --------------------------------------------------------------------------- #
def plan_cache_key(
    workload: Workload, planner: PlannerSpec
) -> "tuple[Any, ...] | None":
    """The session-cache key of a plan, or ``None`` when uncacheable.

    Keyed by the *identity of the input data* (mirroring the session's
    dataset cache) plus everything the decision depends on: the error
    threshold and the planner knobs.  In-memory ``pairs`` inputs have no
    spec-derivable identity, so they re-plan per run.
    """
    spec = workload.input
    input_key: "tuple[Any, ...]"
    if spec.kind == "dataset":
        input_key = ("dataset", spec.dataset, spec.n_pairs, spec.seed)
    elif spec.kind == "tsv":
        input_key = ("tsv", str(spec.path))
    elif spec.kind == "reads":
        input_key = (
            "reads",
            str(spec.path),
            str(spec.reference),
            spec.seeding_k,
            spec.max_candidates_per_read,
        )
    else:
        return None
    return (
        input_key,
        workload.filter.error_threshold,
        planner.sample_pairs,
        planner.false_accept_budget,
        planner.max_stages,
        planner.candidates,
    )


# --------------------------------------------------------------------------- #
# Candidate generation
# --------------------------------------------------------------------------- #
def _candidate_cascades(planner: PlannerSpec) -> "list[tuple[str, ...]]":
    if planner.candidates is not None:
        return list(planner.candidates)
    by_cost = sorted(
        FILTER_COST_PER_PAIR_S, key=lambda name: (FILTER_COST_PER_PAIR_S[name], name)
    )
    cascades: "list[tuple[str, ...]]" = [(name,) for name in by_cost]
    for n_stages in range(2, planner.max_stages + 1):
        # combinations() preserves the cost-ascending order, so every
        # generated cascade runs its cheapest stage first.
        cascades.extend(itertools.combinations(by_cost, n_stages))
    return cascades


def _total_pairs(session: "Session", workload: Workload) -> int:
    spec = workload.input
    if spec.kind == "dataset":
        return int(spec.n_pairs)
    if spec.kind == "pairs":
        return len(spec.pairs or ())
    from ..cluster.plan import count_pairs

    return count_pairs(workload)


# --------------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------------- #
def _compute_plan(
    session: "Session", workload: Workload, planner: PlannerSpec
) -> Plan:
    from ..exec.reduce import modelled_verification_times
    from ..genomics.encoding import EncodedPairBatch

    probe = session.probe_pairs(workload, planner.sample_pairs)
    if not probe:
        raise ValueError(
            "workload.input: cannot plan an empty input "
            "(the probe prefix produced no pairs)"
        )
    probe_n = len(probe)
    read_length = len(probe[0][0])
    total = max(_total_pairs(session, workload), probe_n)
    batch = EncodedPairBatch.from_lists(
        [read for read, _segment in probe], [segment for _read, segment in probe]
    )

    cascades = _candidate_cascades(planner)
    probed_names = sorted({name for cascade in cascades for name in cascade})

    # One engine run per distinct filter; a cascade's accept set is the
    # intersection of its stages' masks (per-pair decisions are independent),
    # so no candidate needs its own probe pass.
    masks: "dict[str, Any]" = {}
    for name in probed_names:
        probe_workload = workload.replace(
            filter=FilterSpec(
                filters=(name,), error_threshold=workload.filter.error_threshold
            )
        )
        engine = session.engine_for(probe_workload, read_length)
        masks[name] = np.asarray(engine.filter_encoded(batch).accepted, dtype=bool)

    probe_cost = round(
        probe_n * sum(filter_cost_per_pair(name, read_length) for name in probed_names),
        9,
    )

    scored: "list[tuple[tuple[str, ...], int, int, float]]" = []
    for cascade in cascades:
        est_cost = probe_cost
        running = np.ones(probe_n, dtype=bool)
        survivors = probe_n
        for name in cascade:
            stage_input = _scaled(survivors, total, probe_n)
            est_cost += stage_input * filter_cost_per_pair(name, read_length)
            running &= masks[name]
            survivors = int(running.sum())
        est_accepts = _scaled(survivors, total, probe_n)
        est_cost += modelled_verification_times(
            est_accepts, total, read_length, session.verification_cost_per_pair_s
        )[0]
        scored.append((cascade, survivors, est_accepts, round(est_cost, 9)))

    min_probe_accepts = min(row[1] for row in scored)
    budget_pairs = planner.false_accept_budget * probe_n
    candidates = [
        CandidateEstimate(
            cascade=cascade,
            probe_accepts=probe_accepts,
            est_accepts=est_accepts,
            est_cost_s=est_cost,
            admissible=(probe_accepts - min_probe_accepts) <= budget_pairs,
        )
        for cascade, probe_accepts, est_accepts, est_cost in scored
    ]
    chosen = min(
        (c for c in candidates if c.admissible),
        key=lambda c: (c.est_cost_s, len(c.cascade), c.cascade),
    )
    candidates = [
        CandidateEstimate(
            cascade=c.cascade,
            probe_accepts=c.probe_accepts,
            est_accepts=c.est_accepts,
            est_cost_s=c.est_cost_s,
            admissible=c.admissible,
            chosen=(c is chosen),
        )
        for c in candidates
    ]
    chosen = next(c for c in candidates if c.chosen)
    return Plan(
        cascade=chosen.cascade,
        probe_pairs=probe_n,
        probe_cost_s=probe_cost,
        est_cost_s=chosen.est_cost_s,
        est_accepts=chosen.est_accepts,
        total_pairs=total,
        read_length=read_length,
        spec=planner,
        candidates=tuple(candidates),
    )


def plan_workload(session: "Session", workload: Workload) -> Plan:
    """Plan an ``auto`` workload (cached per input identity on the session)."""
    spec = workload.filter
    if not spec.is_auto:
        raise ValueError(
            "workload.filter.filters: plan_workload requires filter = 'auto' "
            f"(got {list(spec.filters)})"
        )
    planner = spec.planner if spec.planner is not None else PlannerSpec()
    key = plan_cache_key(workload, planner)
    cached = session.cached_plan(key)
    if cached is not None:
        return cached
    plan = _compute_plan(session, workload, planner)
    session.cache_plan(key, plan)
    return plan


def resolve_workload(session: "Session", workload: Workload) -> Workload:
    """The workload with ``auto`` replaced by the planned concrete cascade.

    The returned workload carries the chosen filters plus the frozen
    ``filter.plan`` record (and no longer a ``planner`` spec — the decision
    is made).  Non-``auto`` workloads pass through unchanged.
    """
    if not workload.filter.is_auto:
        return workload
    plan = plan_workload(session, workload)
    return workload.replace(
        filter=FilterSpec(
            filters=plan.cascade,
            error_threshold=workload.filter.error_threshold,
            plan=plan.record(),
        )
    )
