"""The fan-out guard: no executor pools or shard files for an unplanned run.

The determinism contract of ``filter = "auto"`` is that the planner decides
*once*, before anything fans out — the same workload must choose the same
cascade whether it runs serially, on a thread/process pool, or split across
cluster shards.  :func:`ensure_resolved` is the runtime half of that
contract (the static half is the ``planner-pinned-before-fanout`` rule of
:mod:`repro.analysis.lint`): every code path that constructs an
:class:`~repro.exec.executor.Executor` fan-out or a
:class:`~repro.cluster.plan.ShardPlan` calls it first, so an unresolved
``auto`` spec can never slip past the single planning point.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ensure_resolved"]


def ensure_resolved(workload: Any) -> Any:
    """Raise unless the workload's filter choice is concrete (not ``"auto"``).

    Returns the workload unchanged so the call composes in expressions.
    """
    if getattr(workload.filter, "is_auto", False):
        raise ValueError(
            "workload.filter.filters: 'auto' is unresolved — plan the workload "
            "(Session.run, repro.planner.resolve_workload, or repro shard) "
            "before building engines, executor fan-outs or shard files"
        )
    return workload
