"""Adaptive cascade planning for ``filter = "auto"`` workloads.

Given a workload that defers its filter choice to the system, this package
probes a deterministic prefix of the input, scores candidate cascades with a
calibrated cost model (probe + predicted stage costs + modelled
verification of the survivors), and freezes the cheapest admissible choice
into the workload *before* anything fans out — see
:mod:`repro.planner.planner` for the model and
:mod:`repro.planner.guard` for the fan-out guard.

>>> from repro.api import Session, Workload
>>> from repro.planner import plan_workload
>>> workload = Workload.from_dict({
...     "input": {"kind": "dataset", "dataset": "Set 1", "n_pairs": 100_000},
...     "filter": {"filter": "auto"},
... })
>>> plan = plan_workload(Session(), workload)     # doctest: +SKIP
>>> plan.cascade                                  # doctest: +SKIP
('shouji',)
"""

from .guard import ensure_resolved
from .planner import (
    PLANNER_VERSION,
    CandidateEstimate,
    Plan,
    filter_cost_per_pair,
    plan_cache_key,
    plan_workload,
    resolve_workload,
)

__all__ = [
    "PLANNER_VERSION",
    "CandidateEstimate",
    "Plan",
    "ensure_resolved",
    "filter_cost_per_pair",
    "plan_cache_key",
    "plan_workload",
    "resolve_workload",
]
