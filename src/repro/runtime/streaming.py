"""Chunked, bounded-memory streaming execution of the filtering pipeline.

.. deprecated::
    :class:`StreamingPipeline` remains fully functional but is a legacy
    façade: new code should declare a file-backed :class:`repro.api.Workload`
    (``input.kind = "reads"`` / ``"tsv"``) and execute it on a
    :class:`repro.api.Session`, which drives this runtime with cached
    engines/references/indexes and emits the versioned
    :class:`repro.api.Result` schema.

:class:`StreamingPipeline` is the file-backed counterpart of
:class:`repro.core.pipeline.FilteringPipeline`: instead of a fully
materialised :class:`~repro.simulate.pairs.PairDataset` it consumes any
iterator of ``(read, segment)`` pairs — a FASTQ/FASTA read file seeded
against a reference, a pairs TSV, or a generator — and processes it
``chunk_size`` pairs at a time, so peak memory is O(chunk) regardless of the
input size.

Each chunk is sharded across the configured (simulated) devices with
:class:`~repro.gpusim.multi_gpu.MultiGpuDispatcher`; every device share runs
the engine's batched kernel path (:meth:`FilterEngine.filter_share`), the
surviving pairs are verified immediately, and only counters survive the
chunk.  H2D-transfer/kernel overlap is modelled with one
:class:`~repro.gpusim.stream.CudaStream` per device in a
:class:`~repro.gpusim.stream.StreamPool`, so the report can distinguish
*serial* execution (every transfer and kernel back-to-back) from
*overlapped* execution (devices run concurrently, chunks pipeline).

Equivalence contract
--------------------
For the same pairs, the accumulated :class:`StreamingReport` totals are
**byte-identical** to the in-memory pipeline's
:meth:`~repro.core.pipeline.PipelineReport.summary` — same accept/reject
decisions (each pair's decision depends only on that pair) and same modelled
times (the analytic timing model is evaluated once on the final totals, with
exactly the calls the in-memory path makes).  ``tests/test_runtime_streaming.py``
locks this down for every registered filter and several chunk sizes, and
``tests/test_streaming_golden.py`` pins the totals on a checked-in fixture.

The same per-pair determinism is what makes the adaptive planner's probe
(:mod:`repro.planner`) mode-independent: the planner samples the *prefix* of
the pair iterator — the pairs the streaming path would place in its first
chunk(s), in the order the in-memory path indexes them — so a
``filter = "auto"`` workload resolves to the same plan whether it later runs
streamed or in memory, at any chunk size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from .._defaults import DEFAULT_CHUNK_SIZE, VERIFICATION_COST_PER_PAIR_S
from ..align.verification import Verifier
from ..core.config import EncodingActor
from ..core.pipeline import resolve_error_threshold
from ..exec.reduce import (
    modelled_verification_times,
    stream_overlap_times,
    total_timing,
)
from ..filters.base import PreAlignmentFilter
from ..genomics.encoding import EncodedPairBatch
from ..gpusim.multi_gpu import MultiGpuDispatcher, split_evenly
from ..gpusim.timing import FilterTiming
from .sources import (
    ensure_pairs_path,
    pairs_from_dataset,
    pairs_from_tsv,
    seeded_pairs,
)

__all__ = ["ChunkReport", "StreamingReport", "StreamingPipeline"]


@dataclass(frozen=True)
class ChunkReport:
    """Per-chunk accounting (everything that survives a chunk besides counters)."""

    chunk_index: int
    n_pairs: int
    n_accepted: int
    n_rejected: int
    n_undefined: int
    n_batches: int
    wall_clock_s: float
    modelled_kernel_s: float
    modelled_filter_s: float

    def summary(self) -> dict:
        return {
            "chunk": self.chunk_index,
            "n_pairs": self.n_pairs,
            "n_accepted": self.n_accepted,
            "n_rejected": self.n_rejected,
            "n_undefined": self.n_undefined,
            "n_batches": self.n_batches,
            "modelled_kernel_s": self.modelled_kernel_s,
            "modelled_filter_s": self.modelled_filter_s,
        }


@dataclass
class StreamingReport:
    """Merged accounting of a full streaming run.

    The totals section mirrors :class:`repro.core.pipeline.PipelineReport`
    exactly (same fields, same formulas, same analytic-model calls on the
    final counts), so :meth:`summary` of a streaming run and of the in-memory
    pipeline on the same data are JSON-equal.  On top of that the report
    keeps the streaming-only quantities: per-chunk accounting, the number of
    chunks/devices, and the modelled serial vs overlapped wall times from the
    stream model.
    """

    dataset_name: str
    filter_name: str
    error_threshold: int
    read_length: int
    chunk_size: int
    n_devices: int
    n_pairs: int
    n_accepted: int
    n_rejected: int
    n_undefined: int
    n_batches: int
    n_chunks: int
    verified_accepts: int
    verified_rejects: int
    verification_time_s: float
    verification_wall_clock_s: float
    no_filter_verification_time_s: float
    timing: FilterTiming
    wall_clock_s: float
    serial_time_s: float
    overlapped_time_s: float
    chunks: list[ChunkReport] = field(default_factory=list)
    accepted: np.ndarray | None = None
    estimated_edits: np.ndarray | None = None
    undefined: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # PipelineReport-compatible views
    # ------------------------------------------------------------------ #
    @property
    def kernel_time_s(self) -> float:
        return self.timing.kernel_s

    @property
    def filter_time_s(self) -> float:
        return self.timing.filter_s

    @property
    def pairs_entering_verification(self) -> int:
        return self.n_accepted

    @property
    def rejected_pairs(self) -> int:
        return self.n_rejected

    @property
    def reduction(self) -> float:
        """Fraction of candidate verifications eliminated by the filter."""
        return self.n_rejected / self.n_pairs if self.n_pairs else 0.0

    @property
    def filtering_plus_verification_time_s(self) -> float:
        return self.kernel_time_s + self.verification_time_s

    @property
    def verification_speedup(self) -> float:
        denominator = self.filtering_plus_verification_time_s
        return self.no_filter_verification_time_s / denominator if denominator else float("inf")

    @property
    def theoretical_speedup(self) -> float:
        surviving = self.pairs_entering_verification
        return self.n_pairs / surviving if surviving else float("inf")

    @property
    def overlap_speedup(self) -> float:
        """Modelled speedup of overlapped streams over serial execution."""
        return self.serial_time_s / self.overlapped_time_s if self.overlapped_time_s else 1.0

    def summary(self) -> dict[str, float | int | str]:
        """Totals, field-for-field identical to ``PipelineReport.summary()``."""
        return {
            "dataset": self.dataset_name,
            "error_threshold": self.error_threshold,
            "n_pairs": self.n_pairs,
            "verification_pairs": self.pairs_entering_verification,
            "rejected_pairs": self.rejected_pairs,
            "reduction_pct": round(100.0 * self.reduction, 2),
            "kernel_time_s": self.kernel_time_s,
            "filter_time_s": self.filter_time_s,
            "verification_time_s": self.verification_time_s,
            "no_filter_verification_time_s": self.no_filter_verification_time_s,
            "verification_speedup": round(self.verification_speedup, 3),
            "theoretical_speedup": round(self.theoretical_speedup, 3),
        }

    def streaming_summary(self) -> dict[str, float | int | str]:
        """The streaming-only quantities (chunking, devices, overlap model)."""
        return {
            "filter": self.filter_name,
            "chunk_size": self.chunk_size,
            "n_chunks": self.n_chunks,
            "n_devices": self.n_devices,
            "n_batches": self.n_batches,
            "n_undefined": self.n_undefined,
            "verified_accepts": self.verified_accepts,
            "verified_rejects": self.verified_rejects,
            "serial_time_s": self.serial_time_s,
            "overlapped_time_s": self.overlapped_time_s,
            "overlap_speedup": round(self.overlap_speedup, 3),
        }

    def as_dict(self, include_chunks: bool = True) -> dict:
        """JSON-ready view: totals + streaming extras (+ per-chunk rows).

        Non-finite floats (e.g. an infinite speedup when nothing survives)
        are mapped to ``None`` so the output stays strict RFC-8259 JSON.
        """

        def json_safe(mapping: dict) -> dict:
            return {
                key: (None if isinstance(value, float) and not np.isfinite(value) else value)
                for key, value in mapping.items()
            }

        out = {
            "summary": json_safe(self.summary()),
            "streaming": json_safe(self.streaming_summary()),
        }
        if include_chunks:
            out["chunks"] = [json_safe(chunk.summary()) for chunk in self.chunks]
        return out


class StreamingPipeline:
    """Filter + verify an unbounded pair stream in bounded memory.

    Parameters
    ----------
    engine:
        Anything the in-memory pipeline accepts: an engine or cascade (has
        ``filter_lists``), a :class:`PreAlignmentFilter` instance or subclass,
        a registry name string — or, additionally, a list of names, which is
        resolved into a :class:`~repro.engine.FilterCascade` when the first
        chunk fixes the read length.
    chunk_size:
        Pairs per chunk; peak memory is proportional to this.
    verifier / error_threshold / verification_cost_per_pair_s:
        As in :class:`~repro.core.pipeline.FilteringPipeline`.
    collect_decisions:
        Keep the concatenated accept/estimate/undefined vectors on the report
        (1 byte + 4 bytes + 1 byte per pair).  Disable for truly unbounded
        inputs; the totals are unaffected.
    collect_chunk_reports:
        Keep one :class:`ChunkReport` per chunk on the report.  Cheap (one
        small object per chunk), but disable it too when streaming without
        any bound on the number of chunks; the totals are unaffected.
    max_chunk_reports:
        Keep at most this many leading :class:`ChunkReport` rows (``None`` =
        unlimited).  ``StreamingReport.n_chunks`` always counts every chunk,
        so a truncated report is detectable (``n_chunks > len(chunks)``).
    collect_chunk_timings:
        Record every chunk's per-device ``[transfer_s, kernel_s, host_s]``
        stream-model triples on ``report.metadata["chunk_device_timings"]``.
        Sharded runs (:mod:`repro.cluster`) enable this so ``repro merge``
        can replay the stream-overlap accumulation in the exact single-run
        order; off by default (O(n_chunks) extra state).
    engine_kwargs:
        Extra :class:`~repro.engine.FilterEngine` constructor arguments used
        when the engine is built lazily from a name/class/list spec (e.g.
        ``n_devices=4`` or ``setup=SETUP_1``).
    executor:
        Optional :class:`~repro.exec.Executor` — every chunk's filtration
        fans out across its workers (threads or processes with shared-memory
        transport).  Decisions, modelled times and batch counts are
        byte-identical to serial execution for every backend/worker count.
    prefetch:
        Overlap input and compute: a producer thread parses and encodes chunk
        ``N + 1`` while chunk ``N`` filters (the host-side analogue of the
        modelled H2D/kernel ``CudaStream`` overlap — but measured).  Results
        are unaffected; only wall-clock changes.
    prefetch_chunks:
        Bound on encoded chunks queued ahead of the consumer (peak memory is
        proportional to ``prefetch_chunks * chunk_size``).
    """

    def __init__(
        self,
        engine,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        verifier: Verifier | None = None,
        error_threshold: int | None = None,
        verification_cost_per_pair_s: float = VERIFICATION_COST_PER_PAIR_S,
        collect_decisions: bool = True,
        collect_chunk_reports: bool = True,
        max_chunk_reports: int | None = None,
        collect_chunk_timings: bool = False,
        engine_kwargs: dict | None = None,
        executor=None,
        prefetch: bool = False,
        prefetch_chunks: int = 2,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if max_chunk_reports is not None and max_chunk_reports < 0:
            raise ValueError("max_chunk_reports must be non-negative or None")
        if prefetch_chunks < 1:
            raise ValueError("prefetch_chunks must be at least 1")
        self.chunk_size = int(chunk_size)
        self.engine = engine
        self.verification_cost_per_pair_s = verification_cost_per_pair_s
        self.collect_decisions = bool(collect_decisions)
        self.collect_chunk_reports = bool(collect_chunk_reports)
        self.max_chunk_reports = max_chunk_reports
        self.collect_chunk_timings = bool(collect_chunk_timings)
        self.engine_kwargs = dict(engine_kwargs or {})
        self.executor = executor
        self.prefetch = bool(prefetch)
        self.prefetch_chunks = int(prefetch_chunks)
        self._executor_support: "tuple[object, bool] | None" = None

        self.error_threshold = resolve_error_threshold(engine, error_threshold)
        self.verifier = verifier or Verifier(self.error_threshold)

        self._lazy_spec = None
        if not hasattr(engine, "filter_lists"):
            if not isinstance(engine, (str, PreAlignmentFilter, type, list, tuple)):
                raise TypeError(f"cannot filter with {engine!r}")
            self._lazy_spec = engine
            self.engine = None

    # ------------------------------------------------------------------ #
    # Engine resolution
    # ------------------------------------------------------------------ #
    def _engine_for(self, read_length: int):
        """Build/rebuild a lazily-specified engine for ``read_length``."""
        if self._lazy_spec is None:
            return self.engine
        if self.engine is None or self.engine.read_length != read_length:
            from ..engine.cascade import FilterCascade
            from ..engine.engine import FilterEngine

            if isinstance(self._lazy_spec, (list, tuple)):
                self.engine = FilterCascade.from_names(
                    list(self._lazy_spec),
                    read_length=read_length,
                    error_threshold=self.error_threshold,
                    **self.engine_kwargs,
                )
            else:
                self.engine = FilterEngine(
                    self._lazy_spec,
                    read_length=read_length,
                    error_threshold=self.error_threshold,
                    **self.engine_kwargs,
                )
        return self.engine

    def _spec_name(self) -> str:
        """Display name of the configured filter, even before any chunk ran."""
        if self.engine is not None:
            return getattr(self.engine, "name", "none")
        spec = self._lazy_spec
        from ..engine.registry import get_filter_class

        if isinstance(spec, (list, tuple)):
            return " -> ".join(get_filter_class(name).name for name in spec)
        if isinstance(spec, str):
            return get_filter_class(spec).name
        return getattr(spec, "name", getattr(spec, "__name__", "none"))

    def _configured_devices(self) -> int:
        """Device count of the configured engine, even before any chunk ran."""
        if self.engine is not None:
            return self.engine.n_devices
        if "devices" in self.engine_kwargs:
            return len(self.engine_kwargs["devices"])
        return max(1, int(self.engine_kwargs.get("n_devices", 1)))

    # ------------------------------------------------------------------ #
    # Chunk execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _iter_chunks(
        pairs: Iterable[tuple[str, str]], chunk_size: int
    ) -> Iterator[tuple[list[str], list[str]]]:
        reads: list[str] = []
        segments: list[str] = []
        for read, segment in pairs:
            reads.append(read)
            segments.append(segment)
            if len(reads) >= chunk_size:
                yield reads, segments
                reads, segments = [], []
        if reads:
            yield reads, segments

    def _encode_chunk(self, reads, segments) -> "EncodedPairBatch | None":
        """Encode one chunk ahead of filtration (the producer-side work).

        Returns ``None`` for custom string-only engines, which keep their own
        single encode inside :meth:`_filter_chunk`.  When the engine is
        already known to consume the packed word form, the words are packed
        here too, so the *whole* input-side cost sits in the producer thread
        under ``prefetch=True``.
        """
        engine = self.engine
        if engine is not None and not (
            hasattr(engine, "filter_encoded") or hasattr(engine, "filter_encoded_share")
        ):
            return None
        batch = EncodedPairBatch.from_lists(reads, segments)
        if engine is not None:
            from ..exec.executor import wants_word_arrays

            if wants_word_arrays(engine):
                batch.read_words
                batch.ref_words
        return batch

    def _iter_prepared(
        self, pairs: Iterable[tuple[str, str]]
    ) -> Iterator[tuple[list[str], list[str], "EncodedPairBatch | None"]]:
        """Yield ``(reads, segments, encoded)`` chunks, prefetching if enabled.

        Without prefetch, chunks are encoded inline (same thread, same order
        as before).  With prefetch, a producer thread reads the pair iterator
        and encodes chunk ``N + 1`` while the caller filters chunk ``N``; the
        queue is bounded by ``prefetch_chunks`` so memory stays O(chunk).
        """
        if not self.prefetch:
            for reads, segments in self._iter_chunks(pairs, self.chunk_size):
                yield reads, segments, self._encode_chunk(reads, segments)
            return

        import queue as queue_module
        import threading

        work: "queue_module.Queue" = queue_module.Queue(maxsize=self.prefetch_chunks)
        stop = threading.Event()
        done = object()

        def _put(item) -> bool:
            while not stop.is_set():
                try:
                    work.put(item, timeout=0.05)
                    return True
                except queue_module.Full:
                    continue
            return False

        def _produce() -> None:
            try:
                for reads, segments in self._iter_chunks(pairs, self.chunk_size):
                    if not _put((reads, segments, self._encode_chunk(reads, segments))):
                        return
                _put(done)
            except BaseException as exc:  # propagate parse errors to the consumer
                _put(exc)

        producer = threading.Thread(
            target=_produce, name="repro-prefetch", daemon=True
        )
        producer.start()
        try:
            while True:
                item = work.get()
                if item is done:
                    return
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            stop.set()
            while not work.empty():  # unblock a producer stuck on a full queue
                try:
                    work.get_nowait()
                except queue_module.Empty:  # pragma: no cover - race window
                    break
            producer.join(timeout=5.0)

    def _engine_takes_executor(self, engine) -> bool:
        """Whether ``engine.filter_encoded`` accepts ``executor=`` (cached —
        the signature reflection must not run once per chunk)."""
        if self.executor is None:
            return False
        cached = self._executor_support
        if cached is None or cached[0] is not engine:
            from ..exec.executor import accepts_executor

            cached = (engine, accepts_executor(engine.filter_encoded))
            self._executor_support = cached
        return cached[1]

    def _filter_chunk(self, engine, reads, segments, stage_inputs, encoded=None):
        """Filter one chunk; returns (estimates, accepted, undefined, n_batches,
        per-device share timings).

        The chunk is encoded into an
        :class:`~repro.genomics.encoding.EncodedPairBatch` exactly once —
        either by the (possibly prefetching) chunk preparation, arriving here
        as ``encoded``, or inline; device shares and cascade stages below only
        ever see index/slice views of it.  A configured executor fans the
        chunk across its workers without changing any reported quantity.
        """
        n = len(reads)
        if hasattr(engine, "stages"):
            # Cascade: the cascade handles the stage survivor logic itself
            # (each stage's engine splits across its devices internally).
            if hasattr(engine, "filter_encoded"):
                batch = (
                    encoded
                    if encoded is not None
                    else EncodedPairBatch.from_lists(reads, segments)
                )
                if self._engine_takes_executor(engine):
                    result = engine.filter_encoded(batch, executor=self.executor)
                else:
                    result = engine.filter_encoded(batch)
            else:  # custom cascade-like engine without the encoded protocol
                result = engine.filter_lists(reads, segments)
            for account in result.stage_accounts:
                stage_inputs[account.stage] = (
                    stage_inputs.get(account.stage, 0) + account.n_input
                )
            # Per-device stream-model timings: a proportional split of the
            # chunk's composite (all-stage) timing across the device shares.
            share_timings = []
            for share in split_evenly(n, engine.n_devices):
                fraction = (share.stop - share.start) / n
                share_timings.append(
                    FilterTiming(
                        encode_s=result.timing.encode_s * fraction,
                        host_prep_s=result.timing.host_prep_s * fraction,
                        transfer_s=result.timing.transfer_s * fraction,
                        kernel_s=result.timing.kernel_s * fraction,
                    )
                )
            return (
                result.estimated_edits,
                result.accepted,
                result.undefined,
                result.n_batches,
                share_timings,
            )

        # Single engine: shard the chunk across devices explicitly.  The chunk
        # is encoded once, up front, only when the engine speaks the encoded
        # protocol — a custom string-only engine keeps its single encode.
        pairs = None
        if hasattr(engine, "filter_encoded_share"):
            pairs = (
                encoded
                if encoded is not None
                else EncodedPairBatch.from_lists(reads, segments)
            )

        if self.executor is not None and pairs is not None and hasattr(engine, "config"):
            # Executor fan-out: decisions are reduced from worker shares; the
            # per-device stream-model timings and the batch count are the
            # analytic quantities the dispatcher would have produced (pure
            # functions of the chunk size), so every reported number matches
            # the serial dispatch exactly.
            from ..exec.fanout import expected_n_batches, fan_out_engine

            estimates, accepted, undefined = fan_out_engine(
                engine, pairs, self.executor
            )
            share_timings = MultiGpuDispatcher(
                engine.config.devices, engine.timing_model
            ).share_timings(
                n,
                engine.read_length,
                engine.error_threshold,
                encode_on_device=engine.encoding is EncodingActor.DEVICE,
            )
            stage_inputs[0] = stage_inputs.get(0, 0) + n
            return (
                estimates,
                accepted,
                undefined,
                expected_n_batches(engine.config, n),
                share_timings,
            )

        estimates = np.zeros(n, dtype=np.int32)
        accepted = np.zeros(n, dtype=bool)
        undefined = np.zeros(n, dtype=bool)

        def run_share(item_slice: slice, device_index: int):
            if pairs is not None:
                share_est, share_acc, share_undef, share_batches = (
                    engine.filter_encoded_share(pairs[item_slice])
                )
            else:  # custom engine without the encoded protocol
                share_est, share_acc, share_undef, share_batches = (
                    engine.filter_share(reads[item_slice], segments[item_slice])
                )
            estimates[item_slice] = share_est
            accepted[item_slice] = share_acc
            undefined[item_slice] = share_undef
            return share_batches

        # No executor here: this branch only runs custom engines (built-in
        # ones took the encoded fan-out above), and a custom engine's share
        # methods carry no thread-safety guarantee — racing them could
        # silently break the byte-identity contract.
        dispatcher = MultiGpuDispatcher(engine.config.devices, engine.timing_model)
        shares = dispatcher.dispatch(
            n,
            run_share,
            engine.read_length,
            engine.error_threshold,
            encode_on_device=engine.encoding is EncodingActor.DEVICE,
        )
        stage_inputs[0] = stage_inputs.get(0, 0) + n
        n_batches = sum(int(s.result) for s in shares)
        return estimates, accepted, undefined, n_batches, [s.timing for s in shares]

    def _total_timing(self, engine, n_pairs: int, stage_inputs: dict) -> FilterTiming:
        """Evaluate the analytic model on the final totals.

        Delegates to :func:`repro.exec.reduce.total_timing` — the shared
        totals-based reduction also used by the parallel cascade and the
        cluster shard merge, which is what makes the streaming totals
        byte-identical to the in-memory report (and a merged sharded run
        byte-identical to both).
        """
        return total_timing(engine, n_pairs, stage_inputs)

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def run_pairs(
        self,
        pairs: Iterable[tuple[str, str]],
        name: str = "stream",
        verify: bool = True,
    ) -> StreamingReport:
        """Stream ``(read, segment)`` pairs through filter + verification."""
        wall_start = time.perf_counter()
        engine = None
        read_length = 0
        n_chunks_seen = 0
        n_pairs = n_accepted = n_undefined = n_batches = 0
        verified_accepts = verified_rejects = 0
        verification_wall = 0.0
        stage_inputs: dict[int, int] = {}
        chunk_reports: list[ChunkReport] = []
        accepted_parts: list[np.ndarray] = []
        estimate_parts: list[np.ndarray] = []
        undefined_parts: list[np.ndarray] = []
        # Per-device running totals for the stream model; materialised as one
        # aggregated operation per kind per stream at the end, so the model
        # state stays O(devices) no matter how many chunks went through.
        device_transfer: list[float] = []
        device_kernel: list[float] = []
        host_time = 0.0
        chunk_timings: list[list[list[float]]] = []

        for chunk_index, (reads, segments, encoded) in enumerate(
            self._iter_prepared(pairs)
        ):
            chunk_start = time.perf_counter()
            if engine is None:
                read_length = len(reads[0])
                engine = self._engine_for(read_length)
                device_transfer = [0.0] * engine.n_devices
                device_kernel = [0.0] * engine.n_devices
            estimates, accepted, undefined, chunk_batches, share_timings = (
                self._filter_chunk(engine, reads, segments, stage_inputs, encoded)
            )

            if verify:
                verify_start = time.perf_counter()
                for index in np.flatnonzero(accepted):
                    outcome = self.verifier.verify(
                        reads[int(index)], segments[int(index)]
                    )
                    if outcome.accepted:
                        verified_accepts += 1
                    else:
                        verified_rejects += 1
                verification_wall += time.perf_counter() - verify_start

            # Stream model: accumulate each device's H2D+kernel work for this
            # chunk; host-side encode/prep time is tracked separately (it is
            # not stream work).  The per-chunk modelled times use the
            # dispatcher's multi-GPU combination rules (kernels overlap
            # across devices, host phases amortise), so chunk rows stay
            # consistent with the totals.
            # These are per-*device* modelled times for the configured device
            # split — a semantic quantity fixed by n_devices, not an executor
            # partition artifact — so accumulating them is partition-invariant.
            for device_index, timing in enumerate(share_timings):
                device_transfer[device_index] += timing.transfer_s  # reprolint: disable=partition-invariant-reduction
                device_kernel[device_index] += timing.kernel_s
                host_time += timing.encode_s + timing.host_prep_s  # reprolint: disable=partition-invariant-reduction
            if self.collect_chunk_timings:
                # The same per-device semantic quantities as the accumulation
                # above, serialised per chunk so a shard merge can replay the
                # accumulation in single-run order (same waiver rationale).
                chunk_timings.append(
                    [
                        [timing.transfer_s, timing.kernel_s, timing.encode_s + timing.host_prep_s]  # reprolint: disable=partition-invariant-reduction
                        for timing in share_timings
                    ]
                )
            chunk_kernel = MultiGpuDispatcher.combined_kernel_time_from_timings(
                share_timings
            )
            chunk_filter = MultiGpuDispatcher.combined_filter_time_from_timings(
                share_timings
            )

            chunk_accepted = int(accepted.sum())
            chunk_undefined = int(undefined.sum())
            n_pairs += len(reads)
            n_accepted += chunk_accepted
            n_undefined += chunk_undefined
            n_batches += chunk_batches
            n_chunks_seen = chunk_index + 1
            if self.collect_chunk_reports and (
                self.max_chunk_reports is None
                or len(chunk_reports) < self.max_chunk_reports
            ):
                chunk_reports.append(
                    ChunkReport(
                        chunk_index=chunk_index,
                        n_pairs=len(reads),
                        n_accepted=chunk_accepted,
                        n_rejected=len(reads) - chunk_accepted,
                        n_undefined=chunk_undefined,
                        n_batches=chunk_batches,
                        wall_clock_s=time.perf_counter() - chunk_start,
                        modelled_kernel_s=chunk_kernel,
                        modelled_filter_s=chunk_filter,
                    )
                )
            if self.collect_decisions:
                accepted_parts.append(np.asarray(accepted, dtype=bool))
                estimate_parts.append(np.asarray(estimates, dtype=np.int32))
                undefined_parts.append(np.asarray(undefined, dtype=bool))

        timing = self._total_timing(engine, n_pairs, stage_inputs)
        # Model-scale verification times; identical arithmetic to the
        # in-memory pipeline (count x per-pair cost, then the quadratic
        # read-length factor).
        verification_time, no_filter_time = modelled_verification_times(
            n_accepted, n_pairs, read_length, self.verification_cost_per_pair_s
        )

        # Materialise the stream model: one stream per device with its
        # accumulated H2D and kernel work.  Concurrent streams overlap, so
        # the pool completes at the busiest device (makespan); serial
        # execution pays every operation back-to-back (serialized time).
        n_devices = engine.n_devices if engine is not None else self._configured_devices()
        serial_time, overlapped_time = stream_overlap_times(
            device_transfer, device_kernel, host_time, n_devices
        )

        def _concat(parts, dtype):
            if not self.collect_decisions:
                return None
            if not parts:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(parts)

        return StreamingReport(
            dataset_name=name,
            filter_name=engine.name if engine is not None else self._spec_name(),
            error_threshold=self.error_threshold,
            read_length=read_length,
            chunk_size=self.chunk_size,
            n_devices=n_devices,
            n_pairs=n_pairs,
            n_accepted=n_accepted,
            n_rejected=n_pairs - n_accepted,
            n_undefined=n_undefined,
            n_batches=n_batches,
            n_chunks=n_chunks_seen,
            verified_accepts=verified_accepts,
            verified_rejects=verified_rejects,
            verification_time_s=verification_time,
            verification_wall_clock_s=verification_wall,
            no_filter_verification_time_s=no_filter_time,
            timing=timing,
            wall_clock_s=time.perf_counter() - wall_start,
            serial_time_s=serial_time,
            overlapped_time_s=overlapped_time,
            chunks=chunk_reports,
            accepted=_concat(accepted_parts, bool),
            estimated_edits=_concat(estimate_parts, np.int32),
            undefined=_concat(undefined_parts, bool),
            metadata={
                "chunk_size": self.chunk_size,
                "stage_inputs": dict(stage_inputs),
                "executor": getattr(self.executor, "kind", "serial"),
                "workers": getattr(self.executor, "workers", 1),
                "prefetch": self.prefetch,
                **(
                    {"chunk_device_timings": chunk_timings}
                    if self.collect_chunk_timings
                    else {}
                ),
            },
        )

    def run_dataset(self, dataset, verify: bool = True) -> StreamingReport:
        """Stream an in-memory :class:`PairDataset` (used by equivalence tests)."""
        return self.run_pairs(pairs_from_dataset(dataset), name=dataset.name, verify=verify)

    def run_file(
        self,
        input_path: str | Path,
        reference: str | Path | None = None,
        name: str | None = None,
        verify: bool = True,
        seeding_k: int = 12,
        max_candidates_per_read: int = 2048,
    ) -> StreamingReport:
        """Stream candidate pairs from files.

        With ``reference`` given, ``input_path`` is a FASTQ/FASTA read file
        whose reads are seeded against the reference genome (the mapper-index
        source).  Without it, ``input_path`` must be a two-column pairs TSV.
        """
        input_path = Path(input_path)
        if reference is not None:
            pairs = seeded_pairs(
                input_path,
                reference,
                self.error_threshold,
                k=seeding_k,
                max_candidates_per_read=max_candidates_per_read,
            )
        else:
            pairs = pairs_from_tsv(ensure_pairs_path(input_path))
        return self.run_pairs(pairs, name=name or input_path.name, verify=verify)
