"""Streaming runtime: chunked, bounded-memory filtering over real inputs.

This package wires the previously isolated pieces — the FASTQ/FASTA readers
of :mod:`repro.genomics`, the :class:`~repro.gpusim.multi_gpu.MultiGpuDispatcher`
and the :class:`~repro.gpusim.stream.CudaStream` overlap model — into one
end-to-end runtime:

>>> from repro.runtime import StreamingPipeline
>>> pipeline = StreamingPipeline("shouji", chunk_size=10_000, error_threshold=5)
>>> report = pipeline.run_file("reads.fastq", reference="ref.fasta")  # doctest: +SKIP
>>> report.summary()                                                  # doctest: +SKIP

The report totals are byte-identical to the in-memory
:class:`~repro.core.pipeline.FilteringPipeline` on the same data; peak memory
is O(chunk_size) regardless of the input size.  ``repro-stream`` is the CLI
front end.
"""

from .sources import (
    iter_reads,
    load_reference,
    pairs_from_dataset,
    pairs_from_tsv,
    seeded_pairs,
)
from .streaming import ChunkReport, StreamingPipeline, StreamingReport

__all__ = [
    "ChunkReport",
    "StreamingPipeline",
    "StreamingReport",
    "iter_reads",
    "load_reference",
    "pairs_from_dataset",
    "pairs_from_tsv",
    "seeded_pairs",
]
