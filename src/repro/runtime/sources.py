"""Candidate-pair sources for the streaming runtime.

The :class:`~repro.runtime.streaming.StreamingPipeline` consumes a plain
iterator of ``(read, reference_segment)`` string tuples, so any pair producer
can drive it.  This module provides the three producers the experiments need:

* :func:`iter_reads` — stream :class:`~repro.genomics.sequence.Read` records
  from a FASTQ or FASTA file (format detected from the file name, ``.gz``
  transparently supported);
* :func:`pairs_from_tsv` — stream pre-extracted pairs from a two-column
  tab-separated file (one ``read<TAB>segment`` per line), the on-disk
  equivalent of a :class:`~repro.simulate.pairs.PairDataset`;
* :func:`seeded_pairs` — the mapper-index source: stream reads against a
  reference genome, propose candidate locations with the mrFAST-style
  :class:`~repro.mapper.seeding.Seeder`, and emit one pair per candidate.

All producers are generators: nothing is materialised beyond the record in
flight, which is what gives the streaming pipeline its O(chunk) footprint.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from .._defaults import DEFAULT_MAX_CANDIDATES_PER_READ, DEFAULT_SEEDING_K
from ..genomics.fasta import iter_fasta, read_fasta
from ..genomics.fastq import iter_fastq
from ..genomics.opener import open_text
from ..genomics.reference import ReferenceGenome
from ..genomics.sequence import Read, Sequence
from ..mapper.index import KmerIndex
from ..mapper.seeding import Seeder

__all__ = [
    "ensure_pairs_path",
    "iter_reads",
    "load_reference",
    "pairs_from_dataset",
    "pairs_from_tsv",
    "seeded_pairs",
]

#: File suffixes recognised as FASTQ / FASTA (``.gz`` is stripped first).
FASTQ_SUFFIXES = {".fastq", ".fq"}
FASTA_SUFFIXES = {".fasta", ".fa", ".fna"}
PAIRS_SUFFIXES = {".tsv", ".pairs", ".txt"}


def _format_suffix(path: str | Path) -> str:
    """The format-bearing suffix of ``path`` (``.gz`` stripped)."""
    path = Path(path)
    suffixes = path.suffixes
    if suffixes and suffixes[-1] == ".gz":
        suffixes = suffixes[:-1]
    return suffixes[-1].lower() if suffixes else ""


def ensure_pairs_path(path: str | Path) -> Path:
    """Reject a FASTQ/FASTA path where a two-column pairs file is expected.

    The one home of this guard: the streaming pipeline, the Session's
    ``tsv`` input and ``repro-stream`` all route through it, so a read file
    passed without a reference fails with the same actionable message
    everywhere instead of a confusing parse error inside the TSV reader.
    """
    path = Path(path)
    suffix = _format_suffix(path)
    if suffix in FASTQ_SUFFIXES | FASTA_SUFFIXES:
        raise ValueError(
            f"{path}: looks like a read file ({suffix}); pass a "
            f"reference FASTA to seed candidate pairs against, or use "
            f"a two-column pairs file ({', '.join(sorted(PAIRS_SUFFIXES))}) "
            f"as the input"
        )
    return path


def iter_reads(path: str | Path) -> Iterator[Read]:
    """Stream read records from a FASTQ or FASTA file, detected by suffix.

    FASTA records are re-wrapped as :class:`Read` (empty quality) so both
    formats yield the same record type.
    """
    suffix = _format_suffix(path)
    if suffix in FASTQ_SUFFIXES:
        yield from iter_fastq(path)
    elif suffix in FASTA_SUFFIXES:
        for record in iter_fasta(path):
            yield Read(name=record.name, bases=record.bases)
    else:
        raise ValueError(
            f"{path}: unrecognised read-file suffix {suffix!r} "
            f"(expected one of {sorted(FASTQ_SUFFIXES | FASTA_SUFFIXES)})"
        )


def load_reference(path: str | Path) -> ReferenceGenome:
    """Load a (possibly multi-contig) FASTA reference into one coordinate space."""
    records = read_fasta(path)
    if not records:
        raise ValueError(f"{path}: reference FASTA contains no sequences")
    if len(records) == 1:
        return ReferenceGenome.from_sequence(records[0])
    return ReferenceGenome.concatenate(records)


def pairs_from_dataset(dataset) -> Iterator[tuple[str, str]]:
    """Stream the pairs of an in-memory :class:`~repro.simulate.pairs.PairDataset`."""
    yield from zip(dataset.reads, dataset.segments)


def pairs_from_tsv(path: str | Path) -> Iterator[tuple[str, str]]:
    """Stream ``(read, segment)`` pairs from a two-column tab-separated file.

    Blank lines and ``#`` comment lines are skipped.  Malformed lines raise a
    :class:`ValueError` naming the file and line number.
    """
    path = Path(path)
    with open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t")
            if len(fields) != 2:
                raise ValueError(
                    f"{path}: line {line_number}: expected 2 tab-separated "
                    f"columns (read, segment), found {len(fields)}"
                )
            read, segment = fields
            if not read or not segment:
                raise ValueError(
                    f"{path}: line {line_number}: empty read or segment column"
                )
            yield read, segment


def seeded_pairs(
    reads: Iterable[Read | Sequence | str] | str | Path,
    reference: ReferenceGenome | str | Path,
    error_threshold: int,
    k: int = DEFAULT_SEEDING_K,
    max_candidates_per_read: int = DEFAULT_MAX_CANDIDATES_PER_READ,
    index: KmerIndex | None = None,
) -> Iterator[tuple[str, str]]:
    """Stream candidate pairs proposed by the mapper index (seed-and-extend).

    Every read is seeded against a :class:`~repro.mapper.index.KmerIndex` of
    ``reference``; each candidate location yields one ``(read, segment)``
    pair, exactly the pool an mrFAST-style mapper would hand to the
    pre-alignment filter.  ``reads`` may be a FASTQ/FASTA path or any
    iterable of read records / strings; the index is built once, the reads
    are never materialised as a list.  A prebuilt ``index`` over the same
    reference (e.g. a :class:`repro.api.Session` cache entry) skips the
    index construction entirely.
    """
    if isinstance(reads, (str, Path)):
        reads = iter_reads(reads)
    if isinstance(reference, (str, Path)):
        reference = load_reference(reference)
    if index is None:
        index = KmerIndex(reference, k=k)
    seeder = Seeder(index, error_threshold, max_candidates_per_read)
    for read in reads:
        bases = read if isinstance(read, str) else read.bases
        for location in seeder.candidates(bases):
            yield bases, reference.segment(int(location), len(bases))
