"""The one front door: declarative workloads, a resident session, one report.

After three PRs of organic growth this repository had three overlapping entry
layers — :class:`repro.core.pipeline.FilteringPipeline`,
:class:`repro.engine.FilterEngine` / :class:`repro.engine.FilterCascade`, and
:class:`repro.runtime.StreamingPipeline` — each with its own constructor
signature, CLI and report shape.  This package unifies them behind three
types:

:class:`Workload`
    A typed, validated, declarative description of one job: input source
    (simulated dataset, in-memory pairs, pairs TSV, or FASTQ+FASTA seeded by
    the mapper index), filter or cascade + threshold, execution mode /
    devices / chunking, and output options.  Loads from TOML/JSON files and
    plain dicts.

:class:`Session`
    A resident executor that owns constructed engines, cached datasets (with
    their encode-once :class:`~repro.genomics.encoding.EncodedPairBatch`),
    reference genomes and seeding indexes, and runs any number of workloads
    without rebuilding state — the object a queue worker or HTTP layer
    mounts.

:class:`Result`
    The single versioned report schema (``schema_version``) every front end
    emits: canonical summary keys, cascade stage accounting, streaming
    extras, per-chunk rows.  :func:`normalize_summary` / :func:`legacy_summary`
    bridge the pre-schema key spellings.

>>> from repro.api import Session, Workload
>>> workload = Workload.from_dict({
...     "input": {"kind": "dataset", "dataset": "Set 1", "n_pairs": 1000},
...     "filter": {"filter": "sneakysnake", "error_threshold": 5},
... })
>>> result = Session().run(workload)          # doctest: +SKIP
>>> print(result.to_json())                   # doctest: +SKIP

The legacy entry points (``FilteringPipeline``, ``StreamingPipeline``,
``GateKeeperGPU``, the ``repro-*`` CLIs) remain importable as deprecated
façades over the same machinery; new code should program against this
package.
"""

from . import defaults
from .result import (
    LEGACY_KEY_ALIASES,
    SCHEMA_VERSION,
    Result,
    legacy_summary,
    normalize_summary,
)
from .session import Session
from .workload import (
    EXECUTION_MODES,
    INPUT_KINDS,
    ExecutionSpec,
    FilterSpec,
    InputSpec,
    OutputSpec,
    PlannerSpec,
    Workload,
)

__all__ = [
    "defaults",
    "SCHEMA_VERSION",
    "LEGACY_KEY_ALIASES",
    "Result",
    "legacy_summary",
    "normalize_summary",
    "Session",
    "Workload",
    "InputSpec",
    "FilterSpec",
    "PlannerSpec",
    "ExecutionSpec",
    "OutputSpec",
    "INPUT_KINDS",
    "EXECUTION_MODES",
]
