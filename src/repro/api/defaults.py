"""Public home of the package-wide default parameters.

One source of truth for every default that used to be duplicated across
``repro.core.config``, ``repro.core.pipeline``, ``repro.simulate.datasets``
and the CLI parsers.  The values live in :mod:`repro._defaults` (a private,
import-cycle-free module the low-level packages share); import them from
here:

>>> from repro.api.defaults import DEFAULT_ERROR_THRESHOLD, DEFAULT_CHUNK_SIZE
"""

from .._defaults import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CHUNK_SIZE,
    DEFAULT_ERROR_THRESHOLD,
    DEFAULT_MAX_CANDIDATES_PER_READ,
    DEFAULT_N_PAIRS,
    DEFAULT_PLANNER_FALSE_ACCEPT_BUDGET,
    DEFAULT_PLANNER_MAX_STAGES,
    DEFAULT_PLANNER_SAMPLE_PAIRS,
    DEFAULT_READ_LENGTH,
    DEFAULT_SEEDING_K,
    FILTER_COST_PER_PAIR_S,
    VERIFICATION_COST_PER_PAIR_S,
)

__all__ = [
    "DEFAULT_READ_LENGTH",
    "DEFAULT_ERROR_THRESHOLD",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_N_PAIRS",
    "VERIFICATION_COST_PER_PAIR_S",
    "DEFAULT_SEEDING_K",
    "DEFAULT_MAX_CANDIDATES_PER_READ",
    "FILTER_COST_PER_PAIR_S",
    "DEFAULT_PLANNER_SAMPLE_PAIRS",
    "DEFAULT_PLANNER_FALSE_ACCEPT_BUDGET",
    "DEFAULT_PLANNER_MAX_STAGES",
]
