"""A resident session: build engines once, run any number of workloads.

:class:`Session` is the server-shaped object behind the one front door.  It
owns every piece of constructed state a workload run needs — filter engines
and cascades (keyed by their full configuration), simulated pair datasets
with their cached :class:`~repro.genomics.encoding.EncodedPairBatch`, loaded
reference genomes and their k-mer seeding indexes — and reuses all of it
across :meth:`run` calls, so a long-lived process (a queue worker, an HTTP
service) pays construction cost once and filtration cost per request.

Runs are pure with respect to the cached state: executing a workload never
mutates an engine, a dataset or an index, so two workloads on one session
produce byte-identical :class:`~repro.api.result.Result` JSON to two fresh
sessions (locked down by ``tests/test_api_session.py``).

The session is also **thread-safe**: cache construction is serialised behind
one lock (concurrent first requests for the same engine/dataset build it
once), while :meth:`run` itself takes no lock — runs are pure, so any number
of worker threads may execute workloads concurrently on one resident
session.  This is the contract the :mod:`repro.serve` daemon builds on,
hammered by ``tests/test_serve_concurrency.py``.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from .. import _schema as K
from .._defaults import VERIFICATION_COST_PER_PAIR_S
from .result import Result
from .workload import Workload

if TYPE_CHECKING:
    from ..exec.executor import Executor

__all__ = ["Session"]


def _setup_for(name: str) -> Any:
    from ..gpusim.device import SETUP_1, SETUP_2

    return {"setup1": SETUP_1, "setup2": SETUP_2}[name]


def _shard_payload(shard: Any) -> "dict[str, Any]":
    """The ``shard`` section a per-shard :class:`Result` carries."""
    return {
        K.SHARD_INDEX: shard.index,
        K.N_SHARDS: shard.n_shards,
        K.SHARD_START: shard.start,
        K.SHARD_STOP: shard.stop,
        K.SHARD_TOTAL: shard.total,
    }


def _shard_dataset(dataset: Any, shard: Any) -> Any:
    """The ``[start, stop)`` slice of an in-memory dataset, name preserved.

    A fresh :class:`PairDataset` (never a mutation of the session-cached
    one); the original name is kept so per-shard reports carry the same run
    label the merged report will.
    """
    n = len(dataset)
    if shard.total != n:
        raise ValueError(
            f"workload.execution.shard.total: the shard plan assumed "
            f"{shard.total} pairs but the input produced {n}"
        )
    from ..simulate.pairs import PairDataset

    planned = list(dataset.planned_edits or [])
    return PairDataset(
        name=dataset.name,
        reads=list(dataset.reads[shard.start : shard.stop]),
        segments=list(dataset.segments[shard.start : shard.stop]),
        read_length=dataset.read_length,
        profile=getattr(dataset, "profile", None),
        planned_edits=planned[shard.start : shard.stop] if planned else [],
    )


class Session:
    """Execute :class:`~repro.api.workload.Workload` specs against cached state.

    Parameters
    ----------
    verification_cost_per_pair_s:
        Calibrated per-pair DP verification cost used by the analytic model
        (single source: :mod:`repro.api.defaults`).
    """

    def __init__(
        self, verification_cost_per_pair_s: float = VERIFICATION_COST_PER_PAIR_S
    ) -> None:
        self.verification_cost_per_pair_s = verification_cost_per_pair_s
        self._engines: dict[tuple[Any, ...], Any] = {}
        self._datasets: dict[tuple[Any, ...], Any] = {}
        self._references: dict[str, Any] = {}
        self._indexes: dict[tuple[str, int], Any] = {}
        self._executors: dict[tuple[str, int], "Executor"] = {}
        self._plans: dict[tuple[Any, ...], Any] = {}
        # Serialises cache construction only (runs are pure and unlocked);
        # re-entrant because index_for builds through reference_for.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Cached construction
    # ------------------------------------------------------------------ #
    def engine_for(self, workload: Workload, read_length: int) -> Any:
        """The cached engine/cascade for a workload's filter + execution spec."""
        from ..planner.guard import ensure_resolved

        ensure_resolved(workload)
        ex = workload.execution
        key = (
            workload.filter.filters,
            workload.filter.error_threshold,
            int(read_length),
            ex.setup,
            ex.n_devices,
            ex.encoding,
            ex.batch_size,
            ex.kernel_tier,
        )
        with self._lock:
            engine = self._engines.get(key)
            if engine is None:
                from ..core.config import EncodingActor
                from ..engine import FilterCascade, FilterEngine

                engine_kwargs = dict(
                    read_length=int(read_length),
                    error_threshold=workload.filter.error_threshold,
                    setup=_setup_for(ex.setup),
                    n_devices=ex.n_devices,
                    encoding=EncodingActor(ex.encoding),
                    max_reads_per_batch=ex.batch_size,
                    kernel_tier=ex.kernel_tier,
                )
                if workload.filter.is_cascade:
                    engine = FilterCascade.from_names(
                        list(workload.filter.filters), **engine_kwargs
                    )
                else:
                    engine = FilterEngine(workload.filter.filters[0], **engine_kwargs)
                self._engines[key] = engine
            return engine

    def dataset_for(self, workload: Workload) -> Any:
        """The cached simulated :class:`PairDataset` for a ``dataset`` input."""
        spec = workload.input
        key = (spec.dataset, spec.n_pairs, spec.seed)
        with self._lock:
            dataset = self._datasets.get(key)
            if dataset is None:
                from ..simulate.datasets import build_dataset

                dataset = build_dataset(
                    str(spec.dataset), n_pairs=spec.n_pairs, seed=spec.seed
                )
                dataset.encoded()  # encode once, inside the lock, not per-run
                self._datasets[key] = dataset
            return dataset

    def reference_for(self, path: str) -> Any:
        """The cached :class:`ReferenceGenome` loaded from a FASTA path."""
        with self._lock:
            reference = self._references.get(path)
            if reference is None:
                from ..runtime.sources import load_reference

                reference = load_reference(path)
                self._references[path] = reference
            return reference

    def index_for(self, path: str, k: int) -> Any:
        """The cached seeding :class:`KmerIndex` over ``path``'s reference."""
        key = (path, int(k))
        with self._lock:
            index = self._indexes.get(key)
            if index is None:
                from ..mapper.index import KmerIndex

                index = KmerIndex(self.reference_for(path), k=int(k))
                self._indexes[key] = index
            return index

    def executor_for(self, workload: Workload) -> "Executor | None":
        """The cached execution backend for a workload's execution spec.

        ``executor = "serial"`` with one worker returns ``None`` — the layers
        below treat that as plain in-line execution with zero dispatch
        overhead.  Pools (threads/processes) are built once per
        ``(backend, workers)`` configuration and live until :meth:`close`.
        """
        from ..planner.guard import ensure_resolved

        # An executor pool is a fan-out: the filter choice must already be
        # pinned, or workers could not be guaranteed to agree with the plan.
        ensure_resolved(workload)
        ex = workload.execution
        if ex.executor == "serial" and ex.workers <= 1:
            return None
        key = (ex.executor, ex.workers)
        with self._lock:
            executor = self._executors.get(key)
            if executor is None:
                from ..exec import create_executor

                executor = create_executor(ex.executor, ex.workers)
                self._executors[key] = executor
            return executor

    def cached_plan(self, key: "tuple[Any, ...] | None") -> Any:
        """The cached planner :class:`~repro.planner.Plan` for a key, if any."""
        if key is None:
            return None
        with self._lock:
            return self._plans.get(key)

    def cache_plan(self, key: "tuple[Any, ...] | None", plan: Any) -> None:
        """Remember a planner decision (no-op for uncacheable keys)."""
        if key is None:
            return
        with self._lock:
            self._plans[key] = plan

    def probe_pairs(self, workload: Workload, n: int) -> "list[tuple[str, str]]":
        """The first ``min(n, total)`` pairs of the workload's input.

        This is the planner's probe prefix: both execution modes consume the
        same underlying pair order (the streaming source iterator *is* the
        in-memory dataset order for ``dataset``/``pairs`` inputs), so the
        probe — and with it the plan — is independent of how the run will
        later execute.
        """
        import itertools

        pairs, _name = self._streaming_pairs(workload)
        return list(itertools.islice(pairs, int(n)))

    def close(self) -> None:
        """Shut down every cached execution backend (pools, shared memory).

        Idempotent; the construction caches (engines, datasets, references,
        indexes) survive so the session remains usable — a subsequent
        parallel run simply builds a fresh pool.
        """
        with self._lock:
            executors, self._executors = self._executors, {}
        for executor in executors.values():
            executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def cache_info(self) -> dict[str, int]:
        """How much constructed state the session is holding."""
        return {
            "engines": len(self._engines),
            "datasets": len(self._datasets),
            "references": len(self._references),
            "indexes": len(self._indexes),
            "executors": len(self._executors),
            "plans": len(self._plans),
        }

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, workload: "Workload | str | Path") -> Result:
        """Execute one workload and return its canonical :class:`Result`.

        ``workload`` may also be a path to a ``.toml`` / ``.json`` workload
        file, as a convenience mirroring ``repro run``.
        """
        if isinstance(workload, (str, Path)):
            workload = Workload.from_file(workload)
        if workload.filter.is_auto:
            # Resolve 'auto' here — the single planning point — so every
            # path below (engines, executor fan-outs, streaming) sees a
            # concrete, plan-stamped cascade.
            from ..planner import resolve_workload

            workload = resolve_workload(self, workload)
        kind = workload.input.kind
        if kind == "mapping":
            return self._run_mapping(workload)
        if workload.resolved_mode() == "memory":
            return self._run_memory(workload)
        return self._run_streaming(workload)

    def run_all(self, workloads: Iterable[Workload]) -> list[Result]:
        """Execute several workloads on the same resident state."""
        return [self.run(workload) for workload in workloads]

    # -- in-memory path -------------------------------------------------- #
    def _memory_dataset(self, workload: Workload) -> Any:
        spec = workload.input
        if spec.kind == "dataset":
            return self.dataset_for(workload)
        if spec.kind == "pairs":
            from ..simulate.pairs import PairDataset

            pairs = list(spec.pairs or ())
            return PairDataset(
                name=spec.display_name(),
                reads=[p[0] for p in pairs],
                segments=[p[1] for p in pairs],
                read_length=len(pairs[0][0]),
            )
        raise ValueError(
            f"workload.execution.mode: 'memory' does not support file-backed "
            f"input kind {spec.kind!r}; use mode 'streaming' (or 'auto')"
        )

    def _run_memory(self, workload: Workload) -> Result:
        from ..core.pipeline import FilteringPipeline

        dataset = self._memory_dataset(workload)
        shard = workload.execution.shard
        if shard is not None:
            dataset = _shard_dataset(dataset, shard)
        engine = self.engine_for(workload, dataset.read_length)
        pipeline = FilteringPipeline(
            engine,
            verification_cost_per_pair_s=self.verification_cost_per_pair_s,
            executor=self.executor_for(workload),
        )
        report = pipeline.run(dataset, verify=workload.execution.verify)
        result = Result.from_pipeline_report(
            report, workload, read_length=dataset.read_length, filter_name=engine.name
        )
        result.kernel_tier = getattr(engine, "active_kernel_tier", None)
        if shard is not None:
            result.shard = _shard_payload(shard)
        return result

    # -- streaming path -------------------------------------------------- #
    def _streaming_pairs(self, workload: Workload) -> tuple[Iterator[tuple[str, str]], str]:
        """The pair iterator + run name for a streaming workload."""
        from ..runtime.sources import (
            ensure_pairs_path,
            pairs_from_dataset,
            pairs_from_tsv,
            seeded_pairs,
        )

        spec = workload.input
        if spec.kind == "dataset":
            return pairs_from_dataset(self.dataset_for(workload)), spec.display_name()
        if spec.kind == "pairs":
            return iter(list(spec.pairs or ())), spec.display_name()
        if spec.kind == "tsv":
            return pairs_from_tsv(ensure_pairs_path(str(spec.path))), spec.display_name()
        # kind == "reads": seed the read file against the cached reference index.
        reference = self.reference_for(str(spec.reference))
        index = self.index_for(str(spec.reference), spec.seeding_k)
        return (
            seeded_pairs(
                str(spec.path),
                reference,
                workload.filter.error_threshold,
                k=spec.seeding_k,
                max_candidates_per_read=spec.max_candidates_per_read,
                index=index,
            ),
            spec.display_name(),
        )

    def _run_streaming(self, workload: Workload) -> Result:
        pipeline = _session_streaming_pipeline(self, workload)
        pairs, name = self._streaming_pairs(workload)
        shard = workload.execution.shard
        if shard is not None:
            import itertools

            pairs = itertools.islice(pairs, shard.start, shard.stop)
        report = pipeline.run_pairs(pairs, name=name, verify=workload.execution.verify)
        if shard is not None and report.n_pairs != shard.n_pairs:
            raise ValueError(
                f"workload.execution.shard: slice [{shard.start}, {shard.stop}) "
                f"produced {report.n_pairs} pairs (expected {shard.n_pairs}); "
                f"the input is shorter than the shard plan assumed"
            )
        stages = self._streaming_stage_rows(pipeline.engine, report)
        result = Result.from_streaming_report(report, workload, stages=stages)
        # The engine is built lazily on the first chunk; an empty input never
        # builds one, in which case no kernel ran at all.
        result.kernel_tier = getattr(pipeline.engine, "active_kernel_tier", None)
        if shard is not None:
            payload = _shard_payload(shard)
            payload[K.CHUNK_DEVICE_TIMINGS] = list(
                report.metadata.get("chunk_device_timings", [])
            )
            result.shard = payload
        return result

    @staticmethod
    def _streaming_stage_rows(engine: Any, report: Any) -> "list[dict[str, Any]]":
        """Cascade stage accounting reconstructed from the streamed totals.

        Rows carry the same keys as the in-memory cascade accounts and —
        per the streaming/in-memory equivalence contract — the same values:
        stage survivors are the next stage's total input (the final stage's
        survivors are the run's accepted total), and the per-stage modelled
        times are the timing model evaluated on the stage's total input,
        exactly the call ``FilterEngine.filter_encoded`` makes in memory.
        The reconstruction itself is the shared
        :func:`repro.exec.reduce.streaming_stage_rows`, also used by the
        cluster shard merge.
        """
        from ..exec.reduce import streaming_stage_rows

        stage_engines = getattr(engine, "stages", None)
        if not stage_engines:
            return []
        stage_inputs = report.metadata.get("stage_inputs", {})
        return streaming_stage_rows(stage_engines, stage_inputs, report.n_accepted)

    # -- mapping path ---------------------------------------------------- #
    def _run_mapping(self, workload: Workload) -> Result:
        from ..analysis import experiments
        from ..core.config import EncodingActor

        spec = workload.input
        run = experiments.run_whole_genome(
            n_reads=spec.n_reads,
            read_length=spec.read_length,
            genome_length=spec.genome_length,
            error_threshold=workload.filter.error_threshold,
            seed=spec.seed,
            setup=_setup_for(workload.execution.setup),
            encoding=EncodingActor(workload.execution.encoding),
            filter_name=workload.filter.filters[0],
            n_devices=workload.execution.n_devices,
        )
        rows = experiments.whole_genome_mapping_rows(run)
        if not spec.prefilter:
            rows = rows[:1]  # just the NoFilter row
        return Result.from_mapping_run(run, workload, rows)


def _session_streaming_pipeline(session: Session, workload: Workload) -> Any:
    """A :class:`StreamingPipeline` whose engines come from the session cache.

    The pipeline builds its engine lazily when the first chunk fixes the read
    length; binding that resolution to :meth:`Session.engine_for` lets
    repeated streaming workloads reuse one constructed engine/cascade.
    """
    from ..runtime.streaming import StreamingPipeline

    class _Bound(StreamingPipeline):
        def _engine_for(self, read_length: int) -> Any:
            if self.engine is None or self.engine.read_length != read_length:
                self.engine = session.engine_for(workload, read_length)
            return self.engine

    output = workload.output
    return _Bound(
        list(workload.filter.filters)
        if workload.filter.is_cascade
        else workload.filter.filters[0],
        chunk_size=workload.execution.chunk_size,
        error_threshold=workload.filter.error_threshold,
        verification_cost_per_pair_s=session.verification_cost_per_pair_s,
        collect_decisions=output.collect_decisions,
        collect_chunk_reports=output.include_chunks and output.max_chunk_rows > 0,
        max_chunk_reports=output.max_chunk_rows or None,
        # Sharded runs record per-chunk device timings so `repro merge` can
        # replay the stream-overlap accumulation in single-run order.
        collect_chunk_timings=workload.execution.shard is not None,
        executor=session.executor_for(workload),
        prefetch=workload.execution.prefetch,
        # The engine itself comes from the session cache (see _engine_for
        # above), but the pipeline still reads engine_kwargs to report the
        # configured device count when the input turns out to be empty.
        engine_kwargs=dict(n_devices=workload.execution.n_devices),
    )
