"""The one versioned report schema every front end emits.

Before this module, each layer reported through its own dictionary shape:
``FilterRunResult.summary()`` said ``n_accepted``/``rejection_rate``,
``PipelineReport.summary()`` said ``verification_pairs``/``reduction_pct``,
the mapper said ``undefined_pairs``, and the ``BENCH_*.json`` payloads mixed
all three.  :class:`Result` normalises them into a single canonical key set,
carries ``schema_version`` so downstream consumers can detect format changes,
and keeps per-stage cascade accounting, streaming extras and per-chunk rows
as structured sections.

:func:`normalize_summary` upgrades a legacy-keyed summary dictionary to the
canonical spellings, and :func:`legacy_summary` is the compatibility shim
producing the old spellings for consumers that still expect them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "Result",
    "LEGACY_KEY_ALIASES",
    "normalize_summary",
    "legacy_summary",
]

#: Version of the canonical report schema.  Bump on any key change.
SCHEMA_VERSION = 1

#: Legacy summary spellings -> canonical keys (the report-key drift that grew
#: across ``repro-stream --json``, ``FilteringPipeline`` rows and the
#: ``BENCH_*.json`` payloads).
LEGACY_KEY_ALIASES: dict[str, str] = {
    "verification_pairs": "n_accepted",
    "rejected_pairs": "n_rejected",
    "undefined_pairs": "n_undefined",
    "dataset_name": "dataset",
    "filter_name": "filter",
}


def normalize_summary(summary: dict) -> dict:
    """Upgrade a legacy summary dict to the canonical key spellings.

    Aliased keys are renamed; ``rejection_rate`` (a 0-1 fraction) is converted
    to the canonical ``reduction_pct``; canonical keys pass through untouched.
    """
    out: dict[str, Any] = {}
    for key, value in summary.items():
        if key == "rejection_rate":
            out["reduction_pct"] = round(100.0 * float(value), 2)
        else:
            out[LEGACY_KEY_ALIASES.get(key, key)] = value
    return out


#: Canonical -> legacy spellings emitted by :func:`legacy_summary`.  Only the
#: count keys are re-spelt: ``dataset``/``filter`` were already the legacy
#: summary spellings (``dataset_name``/``filter_name`` are attribute names).
_CANONICAL_TO_LEGACY = {
    "n_accepted": "verification_pairs",
    "n_rejected": "rejected_pairs",
    "n_undefined": "undefined_pairs",
}


def legacy_summary(summary: dict) -> dict:
    """Compatibility shim: re-spell a canonical summary with the legacy keys."""
    return {_CANONICAL_TO_LEGACY.get(key, key): value for key, value in summary.items()}


def _json_safe(value):
    """Map non-finite floats to None so dumps stay strict RFC-8259 JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@dataclass
class Result:
    """Canonical, versioned outcome of one :class:`~repro.api.Workload` run.

    Attributes
    ----------
    kind:
        ``"filter"`` (pair filtering + verification) or ``"mapping"``
        (whole-genome mapping rows).
    workload:
        The fully-resolved canonical workload dictionary
        (:meth:`Workload.to_dict`), so every report records exactly what ran.
    dataset / filter:
        Run label and filter display name.
    summary:
        Canonical totals (see :data:`LEGACY_KEY_ALIASES` for the spelling
        contract); JSON-equal across the in-memory and streaming paths.
    streaming:
        Chunking/device/overlap extras for streamed runs, else ``None``.
    stages:
        Per-stage cascade accounting (empty list for single filters).
    chunks:
        Leading per-chunk accounting rows (``None`` when not collected).
    rows:
        Mapping-information rows for ``kind="mapping"`` runs.
    raw:
        The underlying report object (``PipelineReport``, ``StreamingReport``
        or ``WholeGenomeRun``) for programmatic consumers; never serialised.
    wall_clock_s:
        Measured wall-clock of the run; excluded from :meth:`as_dict` so the
        serialised report is byte-reproducible.
    """

    kind: str
    workload: dict
    dataset: str
    filter: str
    summary: dict
    streaming: dict | None = None
    stages: list[dict] = field(default_factory=list)
    chunks: list[dict] | None = None
    rows: list[dict] | None = None
    raw: Any = None
    wall_clock_s: float = 0.0
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def as_dict(self, legacy_keys: bool = False) -> dict:
        """JSON-ready canonical view (deterministic for a deterministic run).

        ``legacy_keys=True`` re-spells the summary section with the pre-schema
        key names via :func:`legacy_summary` for old consumers.
        """
        summary = legacy_summary(self.summary) if legacy_keys else dict(self.summary)
        out: dict[str, Any] = {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "dataset": self.dataset,
            "filter": self.filter,
            "workload": self.workload,
            "summary": summary,
            "streaming": self.streaming,
            "stages": self.stages,
        }
        if self.chunks is not None:
            out["chunks"] = self.chunks
        if self.rows is not None:
            out["rows"] = self.rows
        return _json_safe(out)

    def to_json(self, indent: int = 2, legacy_keys: bool = False) -> str:
        """The canonical JSON serialisation (sorted keys, trailing newline)."""
        return (
            json.dumps(self.as_dict(legacy_keys=legacy_keys), indent=indent, sort_keys=True)
            + "\n"
        )

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pipeline_report(
        cls, report, workload, read_length: int, filter_name: str
    ) -> "Result":
        """Build from an in-memory :class:`~repro.core.pipeline.PipelineReport`."""
        fr = report.filter_result
        summary = {
            "error_threshold": report.error_threshold,
            "read_length": int(read_length),
            "n_pairs": report.n_pairs,
            "n_accepted": fr.n_accepted,
            "n_rejected": fr.n_rejected,
            "n_undefined": fr.n_undefined,
            "reduction_pct": round(100.0 * report.reduction, 2),
            "kernel_time_s": fr.kernel_time_s,
            "filter_time_s": fr.filter_time_s,
            "verification_time_s": report.verification_time_s,
            "no_filter_verification_time_s": report.no_filter_verification_time_s,
            "verification_speedup": round(report.verification_speedup, 3),
            "theoretical_speedup": round(report.theoretical_speedup, 3),
            "verified_accepts": report.verified_accepts,
            "verified_rejects": report.verified_rejects,
        }
        # Measured wall clock is run-dependent; the canonical report keeps
        # only the deterministic counts and modelled times (raw has the rest).
        stages = [
            {key: value for key, value in s.items() if key != "wall_clock_s"}
            for s in getattr(fr, "stage_summaries", lambda: [])()
        ]
        return cls(
            kind="filter",
            workload=workload.to_dict(),
            dataset=report.dataset_name,
            filter=filter_name,
            summary=summary,
            streaming=None,
            stages=stages,
            raw=report,
            wall_clock_s=fr.wall_clock_s + report.verification_wall_clock_s,
        )

    @classmethod
    def from_streaming_report(cls, report, workload, stages: list[dict] | None = None) -> "Result":
        """Build from a :class:`~repro.runtime.streaming.StreamingReport`."""
        summary = {
            "error_threshold": report.error_threshold,
            "read_length": report.read_length,
            "n_pairs": report.n_pairs,
            "n_accepted": report.n_accepted,
            "n_rejected": report.n_rejected,
            "n_undefined": report.n_undefined,
            "reduction_pct": round(100.0 * report.reduction, 2),
            "kernel_time_s": report.kernel_time_s,
            "filter_time_s": report.filter_time_s,
            "verification_time_s": report.verification_time_s,
            "no_filter_verification_time_s": report.no_filter_verification_time_s,
            "verification_speedup": round(report.verification_speedup, 3),
            "theoretical_speedup": round(report.theoretical_speedup, 3),
            "verified_accepts": report.verified_accepts,
            "verified_rejects": report.verified_rejects,
        }
        streaming = {
            "chunk_size": report.chunk_size,
            "n_chunks": report.n_chunks,
            "n_batches": report.n_batches,
            "n_devices": report.n_devices,
            "serial_time_s": report.serial_time_s,
            "overlapped_time_s": report.overlapped_time_s,
            "overlap_speedup": round(report.overlap_speedup, 3),
        }
        chunks = None
        if workload.output.include_chunks:
            chunks = [dict(chunk.summary()) for chunk in report.chunks]
        return cls(
            kind="filter",
            workload=workload.to_dict(),
            dataset=report.dataset_name,
            filter=report.filter_name,
            summary=summary,
            streaming=streaming,
            stages=list(stages or []),
            chunks=chunks,
            raw=report,
            wall_clock_s=report.wall_clock_s,
        )

    @classmethod
    def from_mapping_run(cls, run, workload, rows: list[dict]) -> "Result":
        """Build from a whole-genome :class:`WholeGenomeRun` (``repro-map``).

        With ``input.prefilter = false`` the report describes the unfiltered
        mapper run (``rows`` is then just the NoFilter row).
        """
        prefilter = workload.input.prefilter
        mapping = run.filtered if prefilter else run.no_filter
        stats = mapping.stats
        summary = {
            "error_threshold": run.error_threshold,
            "read_length": run.read_length,
            "n_pairs": stats.candidate_pairs,
            "n_accepted": stats.verification_pairs,
            "n_rejected": stats.rejected_pairs,
            "n_undefined": stats.undefined_pairs,
            "reduction_pct": round(100.0 * stats.reduction, 2),
            "mappings": stats.mappings,
            "mapped_reads": stats.mapped_reads,
            "n_reads": stats.n_reads,
        }
        return cls(
            kind="mapping",
            workload=workload.to_dict(),
            dataset=workload.input.display_name(),
            filter=mapping.filter_name,
            summary=summary,
            rows=[dict(row) for row in rows],
            raw=run,
            wall_clock_s=run.filtered.times.wall_clock_s + run.no_filter.times.wall_clock_s,
        )
