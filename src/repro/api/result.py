"""The one versioned report schema every front end emits.

Before this module, each layer reported through its own dictionary shape:
``FilterRunResult.summary()`` said ``n_accepted``/``rejection_rate``,
``PipelineReport.summary()`` said ``verification_pairs``/``reduction_pct``,
the mapper said ``undefined_pairs``, and the ``BENCH_*.json`` payloads mixed
all three.  :class:`Result` normalises them into a single canonical key set,
carries ``schema_version`` so downstream consumers can detect format changes,
and keeps per-stage cascade accounting, streaming extras and per-chunk rows
as structured sections.

The canonical key spellings live once, in :mod:`repro._schema`; every summary
this module builds uses those constants (the ``result-schema-keys`` lint rule
refuses string literals here).  :func:`normalize_summary` upgrades a
legacy-keyed summary dictionary to the canonical spellings, and
:func:`legacy_summary` is the compatibility shim producing the old spellings
for consumers that still expect them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .. import _schema as K

if TYPE_CHECKING:
    from .workload import Workload

__all__ = [
    "SCHEMA_VERSION",
    "Result",
    "LEGACY_KEY_ALIASES",
    "normalize_summary",
    "legacy_summary",
]

#: Version of the canonical report schema.  Bump on any key change.
SCHEMA_VERSION = 1

#: Legacy summary spellings -> canonical keys (the report-key drift that grew
#: across ``repro-stream --json``, ``FilteringPipeline`` rows and the
#: ``BENCH_*.json`` payloads).
LEGACY_KEY_ALIASES: dict[str, str] = {
    "verification_pairs": K.N_ACCEPTED,
    "rejected_pairs": K.N_REJECTED,
    "undefined_pairs": K.N_UNDEFINED,
    "dataset_name": "dataset",
    "filter_name": "filter",
}


def normalize_summary(summary: dict[str, Any]) -> dict[str, Any]:
    """Upgrade a legacy summary dict to the canonical key spellings.

    Aliased keys are renamed; ``rejection_rate`` (a 0-1 fraction) is converted
    to the canonical ``reduction_pct``; canonical keys pass through untouched.
    """
    out: dict[str, Any] = {}
    for key, value in summary.items():
        if key == "rejection_rate":
            out[K.REDUCTION_PCT] = round(100.0 * float(value), 2)
        else:
            out[LEGACY_KEY_ALIASES.get(key, key)] = value
    return out


#: Canonical -> legacy spellings emitted by :func:`legacy_summary`.  Only the
#: count keys are re-spelt: ``dataset``/``filter`` were already the legacy
#: summary spellings (``dataset_name``/``filter_name`` are attribute names).
_CANONICAL_TO_LEGACY = {
    K.N_ACCEPTED: "verification_pairs",
    K.N_REJECTED: "rejected_pairs",
    K.N_UNDEFINED: "undefined_pairs",
}


def legacy_summary(summary: dict[str, Any]) -> dict[str, Any]:
    """Compatibility shim: re-spell a canonical summary with the legacy keys."""
    return {_CANONICAL_TO_LEGACY.get(key, key): value for key, value in summary.items()}


def _json_safe(value: Any) -> Any:
    """Map non-finite floats to None so dumps stay strict RFC-8259 JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@dataclass
class Result:
    """Canonical, versioned outcome of one :class:`~repro.api.Workload` run.

    Attributes
    ----------
    kind:
        ``"filter"`` (pair filtering + verification) or ``"mapping"``
        (whole-genome mapping rows).
    workload:
        The fully-resolved canonical workload dictionary
        (:meth:`Workload.to_dict`), so every report records exactly what ran.
    dataset / filter:
        Run label and filter display name.
    summary:
        Canonical totals (see :data:`LEGACY_KEY_ALIASES` for the spelling
        contract); JSON-equal across the in-memory and streaming paths.
    streaming:
        Chunking/device/overlap extras for streamed runs, else ``None``.
    stages:
        Per-stage cascade accounting (empty list for single filters).
    chunks:
        Leading per-chunk accounting rows (``None`` when not collected).
    rows:
        Mapping-information rows for ``kind="mapping"`` runs.
    shard:
        Shard provenance for runs whose workload carries an
        ``execution.shard`` slice (:mod:`repro.cluster`): index, slice
        bounds, totals and — for streamed shards — the per-chunk per-device
        timing triples ``repro merge`` replays.  ``None`` (and absent from
        :meth:`as_dict`) on unsharded and merged results.
    raw:
        The underlying report object (``PipelineReport``, ``StreamingReport``
        or ``WholeGenomeRun``) for programmatic consumers; never serialised.
    wall_clock_s:
        Measured wall-clock of the run; excluded from :meth:`as_dict` so the
        serialised report is byte-reproducible.
    kernel_tier:
        The kernel tier that actually ran (``"native"`` or ``"numpy"``), when
        the run went through a filter engine; ``None`` otherwise.  Excluded
        from :meth:`as_dict` — like the execution backend, the tier never
        changes a result, so serialised reports stay byte-identical across
        tiers.
    """

    kind: str
    workload: dict[str, Any]
    dataset: str
    filter: str
    summary: dict[str, Any]
    streaming: dict[str, Any] | None = None
    stages: list[dict[str, Any]] = field(default_factory=list)
    chunks: list[dict[str, Any]] | None = None
    rows: list[dict[str, Any]] | None = None
    shard: dict[str, Any] | None = None
    raw: Any = None
    wall_clock_s: float = 0.0
    kernel_tier: str | None = None
    schema_version: int = SCHEMA_VERSION

    @property
    def plan(self) -> dict[str, Any] | None:
        """The planner's frozen plan record, when this run was planned.

        Plans live inside the recorded workload (``workload.filter.plan``) —
        the workload *is* the resolved spec, so a planned run's provenance
        travels with the same dictionary every shard and merge validates.
        """
        filter_section = self.workload.get("filter") or {}
        record = filter_section.get(K.PLAN)
        return dict(record) if isinstance(record, dict) else None

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def as_dict(self, legacy_keys: bool = False) -> dict[str, Any]:
        """JSON-ready canonical view (deterministic for a deterministic run).

        ``legacy_keys=True`` re-spells the summary section with the pre-schema
        key names via :func:`legacy_summary` for old consumers.
        """
        summary = legacy_summary(self.summary) if legacy_keys else dict(self.summary)
        out: dict[str, Any] = {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "dataset": self.dataset,
            "filter": self.filter,
            "workload": self.workload,
            "summary": summary,
            "streaming": self.streaming,
            "stages": self.stages,
        }
        if self.chunks is not None:
            out["chunks"] = self.chunks
        if self.rows is not None:
            out["rows"] = self.rows
        # Shard provenance is emitted only on per-shard results, so an
        # unsharded run and a merged run stay byte-identical.
        if self.shard is not None:
            out[K.SHARD] = self.shard
        safe: dict[str, Any] = _json_safe(out)
        return safe

    def to_json(self, indent: int = 2, legacy_keys: bool = False) -> str:
        """The canonical JSON serialisation (sorted keys, trailing newline)."""
        return (
            json.dumps(self.as_dict(legacy_keys=legacy_keys), indent=indent, sort_keys=True)
            + "\n"
        )

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pipeline_report(
        cls, report: Any, workload: "Workload", read_length: int, filter_name: str
    ) -> "Result":
        """Build from an in-memory :class:`~repro.core.pipeline.PipelineReport`."""
        fr = report.filter_result
        summary = {
            K.ERROR_THRESHOLD: report.error_threshold,
            K.READ_LENGTH: int(read_length),
            K.N_PAIRS: report.n_pairs,
            K.N_ACCEPTED: fr.n_accepted,
            K.N_REJECTED: fr.n_rejected,
            K.N_UNDEFINED: fr.n_undefined,
            K.REDUCTION_PCT: round(100.0 * report.reduction, 2),
            K.KERNEL_TIME_S: fr.kernel_time_s,
            K.FILTER_TIME_S: fr.filter_time_s,
            K.VERIFICATION_TIME_S: report.verification_time_s,
            K.NO_FILTER_VERIFICATION_TIME_S: report.no_filter_verification_time_s,
            K.VERIFICATION_SPEEDUP: round(report.verification_speedup, 3),
            K.THEORETICAL_SPEEDUP: round(report.theoretical_speedup, 3),
            K.VERIFIED_ACCEPTS: report.verified_accepts,
            K.VERIFIED_REJECTS: report.verified_rejects,
        }
        # Measured wall clock is run-dependent; the canonical report keeps
        # only the deterministic counts and modelled times (raw has the rest).
        stages = [
            {key: value for key, value in s.items() if key != K.WALL_CLOCK_S}
            for s in getattr(fr, "stage_summaries", lambda: [])()
        ]
        return cls(
            kind="filter",
            workload=workload.to_dict(),
            dataset=report.dataset_name,
            filter=filter_name,
            summary=summary,
            streaming=None,
            stages=stages,
            raw=report,
            wall_clock_s=fr.wall_clock_s + report.verification_wall_clock_s,
        )

    @classmethod
    def from_streaming_report(
        cls,
        report: Any,
        workload: "Workload",
        stages: list[dict[str, Any]] | None = None,
    ) -> "Result":
        """Build from a :class:`~repro.runtime.streaming.StreamingReport`."""
        summary = {
            K.ERROR_THRESHOLD: report.error_threshold,
            K.READ_LENGTH: report.read_length,
            K.N_PAIRS: report.n_pairs,
            K.N_ACCEPTED: report.n_accepted,
            K.N_REJECTED: report.n_rejected,
            K.N_UNDEFINED: report.n_undefined,
            K.REDUCTION_PCT: round(100.0 * report.reduction, 2),
            K.KERNEL_TIME_S: report.kernel_time_s,
            K.FILTER_TIME_S: report.filter_time_s,
            K.VERIFICATION_TIME_S: report.verification_time_s,
            K.NO_FILTER_VERIFICATION_TIME_S: report.no_filter_verification_time_s,
            K.VERIFICATION_SPEEDUP: round(report.verification_speedup, 3),
            K.THEORETICAL_SPEEDUP: round(report.theoretical_speedup, 3),
            K.VERIFIED_ACCEPTS: report.verified_accepts,
            K.VERIFIED_REJECTS: report.verified_rejects,
        }
        streaming = {
            K.CHUNK_SIZE: report.chunk_size,
            K.N_CHUNKS: report.n_chunks,
            K.N_BATCHES: report.n_batches,
            K.N_DEVICES: report.n_devices,
            K.SERIAL_TIME_S: report.serial_time_s,
            K.OVERLAPPED_TIME_S: report.overlapped_time_s,
            K.OVERLAP_SPEEDUP: round(report.overlap_speedup, 3),
        }
        chunks = None
        if workload.output.include_chunks:
            chunks = [dict(chunk.summary()) for chunk in report.chunks]
        return cls(
            kind="filter",
            workload=workload.to_dict(),
            dataset=report.dataset_name,
            filter=report.filter_name,
            summary=summary,
            streaming=streaming,
            stages=list(stages or []),
            chunks=chunks,
            raw=report,
            wall_clock_s=report.wall_clock_s,
        )

    @classmethod
    def from_mapping_run(
        cls, run: Any, workload: "Workload", rows: list[dict[str, Any]]
    ) -> "Result":
        """Build from a whole-genome :class:`WholeGenomeRun` (``repro-map``).

        With ``input.prefilter = false`` the report describes the unfiltered
        mapper run (``rows`` is then just the NoFilter row).
        """
        prefilter = workload.input.prefilter
        mapping = run.filtered if prefilter else run.no_filter
        stats = mapping.stats
        summary = {
            K.ERROR_THRESHOLD: run.error_threshold,
            K.READ_LENGTH: run.read_length,
            K.N_PAIRS: stats.candidate_pairs,
            K.N_ACCEPTED: stats.verification_pairs,
            K.N_REJECTED: stats.rejected_pairs,
            K.N_UNDEFINED: stats.undefined_pairs,
            K.REDUCTION_PCT: round(100.0 * stats.reduction, 2),
            K.MAPPINGS: stats.mappings,
            K.MAPPED_READS: stats.mapped_reads,
            K.N_READS: stats.n_reads,
        }
        return cls(
            kind="mapping",
            workload=workload.to_dict(),
            dataset=workload.input.display_name(),
            filter=mapping.filter_name,
            summary=summary,
            rows=[dict(row) for row in rows],
            raw=run,
            wall_clock_s=run.filtered.times.wall_clock_s + run.no_filter.times.wall_clock_s,
        )
