"""Declarative workload specification: *what* to run, independent of *how*.

A :class:`Workload` is a typed, validated description of one filtering (or
mapping) job: where the candidate pairs come from, which filter or cascade
examines them at which threshold, how the run executes (in memory or
streamed, device count, chunking) and what the report should contain.  It is
the single input type of :meth:`repro.api.Session.run`, and every CLI entry
point is a thin translation from flags to a ``Workload``.

Workloads load from TOML or JSON files (``Workload.from_file``) and from
plain dictionaries; validation errors are :class:`ValueError` with messages
that name the offending field (``workload.input.kind: ...``).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping, Sequence

from .. import _schema as K
from .._defaults import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CHUNK_SIZE,
    DEFAULT_ERROR_THRESHOLD,
    DEFAULT_MAX_CANDIDATES_PER_READ,
    DEFAULT_N_PAIRS,
    DEFAULT_PLANNER_FALSE_ACCEPT_BUDGET,
    DEFAULT_PLANNER_MAX_STAGES,
    DEFAULT_PLANNER_SAMPLE_PAIRS,
    DEFAULT_READ_LENGTH,
    DEFAULT_SEEDING_K,
)

__all__ = [
    "InputSpec",
    "FilterSpec",
    "PlannerSpec",
    "ExecutionSpec",
    "ShardSpec",
    "OutputSpec",
    "Workload",
    "INPUT_KINDS",
    "EXECUTION_MODES",
]

#: Candidate-pair sources a workload can declare.
INPUT_KINDS = ("dataset", "pairs", "tsv", "reads", "mapping")
#: How the run executes; ``auto`` picks memory for in-memory sources and
#: streaming for file-backed ones.
EXECUTION_MODES = ("auto", "memory", "streaming")
_SETUPS = ("setup1", "setup2")
_ENCODINGS = ("host", "device")


def _err(fieldpath: str, message: str) -> ValueError:
    return ValueError(f"workload.{fieldpath}: {message}")


def _require(condition: bool, fieldpath: str, message: str) -> None:
    if not condition:
        raise _err(fieldpath, message)


def _coerce(section: str, name: str, value: Any, typ: "type[Any]") -> Any:
    """Coerce a parsed TOML/JSON value to the dataclass field type, loudly."""
    if typ is bool:
        if isinstance(value, bool):
            return value
        raise _err(f"{section}.{name}", f"expected a boolean, got {value!r}")
    if typ is int:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _err(f"{section}.{name}", f"expected an integer, got {value!r}")
        if isinstance(value, float) and not value.is_integer():
            raise _err(f"{section}.{name}", f"expected an integer, got {value!r}")
        return int(value)
    if typ is str:
        if not isinstance(value, str):
            raise _err(f"{section}.{name}", f"expected a string, got {value!r}")
        return value
    return value


#: Scalar field annotations coerced (and type-checked) from parsed TOML/JSON.
#: Annotations are strings under ``from __future__ import annotations``.
_SCALAR_TYPES = {"int": int, "bool": bool, "str": str, int: int, bool: bool, str: str}


def _build_section(
    cls: Any, section: str, data: Mapping[str, Any], aliases: Any = None
) -> Any:
    """Instantiate a spec dataclass from a mapping, rejecting unknown keys."""
    if not isinstance(data, Mapping):
        raise _err(section, f"expected a table/object, got {data!r}")
    known = {f.name: f for f in fields(cls)}
    aliases = dict(aliases or {})
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        name = aliases.get(key, key)
        if callable(name):  # alias with a transform
            name, value = name(value)
        if name not in known:
            raise _err(
                section,
                f"unknown key {key!r} (expected one of "
                f"{sorted(set(known) | set(k for k in aliases))})",
            )
        if name in kwargs:
            raise _err(section, f"{key!r} duplicates a value already given for {name!r}")
        typ = _SCALAR_TYPES.get(known[name].type)
        if typ is not None:
            value = _coerce(section, name, value, typ)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:  # missing required field
        raise _err(section, str(exc)) from exc


@dataclass(frozen=True)
class InputSpec:
    """Where the candidate pairs come from.

    ``kind`` selects the source and which other fields apply:

    ``dataset``
        A simulated paper data set: ``dataset`` (name), ``n_pairs``, ``seed``.
    ``pairs``
        In-memory ``(read, segment)`` tuples passed programmatically via
        ``pairs`` (not loadable from TOML/JSON); ``name`` labels the run.
    ``tsv``
        A two-column ``read<TAB>segment`` file: ``path``.
    ``reads``
        A FASTQ/FASTA read file seeded against a reference FASTA:
        ``path``, ``reference``, ``seeding_k``, ``max_candidates_per_read``.
    ``mapping``
        A simulated whole-genome mapping run (the ``repro-map`` workload):
        ``n_reads``, ``read_length``, ``genome_length``, ``seed``, and
        ``prefilter`` (``false`` reports the mapper without pre-alignment
        filtering, the ``--no-filter`` flag).
    """

    kind: str
    # dataset
    dataset: str | None = None
    n_pairs: int = DEFAULT_N_PAIRS
    seed: int = 0
    # tsv / reads
    path: str | None = None
    reference: str | None = None
    seeding_k: int = DEFAULT_SEEDING_K
    max_candidates_per_read: int = DEFAULT_MAX_CANDIDATES_PER_READ
    # pairs (programmatic only)
    pairs: Sequence[tuple[str, str]] | None = None
    name: str | None = None
    # mapping
    n_reads: int = 300
    read_length: int = DEFAULT_READ_LENGTH
    genome_length: int = 50_000
    prefilter: bool = True

    def __post_init__(self) -> None:
        _require(self.kind in INPUT_KINDS, "input.kind",
                 f"unknown input kind {self.kind!r} (expected one of {list(INPUT_KINDS)})")
        _require(self.n_pairs >= 1, "input.n_pairs", "must be at least 1")
        _require(self.seeding_k >= 1, "input.seeding_k", "must be at least 1")
        _require(self.max_candidates_per_read >= 1,
                 "input.max_candidates_per_read", "must be at least 1")
        if self.kind == "dataset":
            from ..simulate.datasets import PAPER_DATASETS

            _require(self.dataset is not None, "input.dataset",
                     "required for kind 'dataset'")
            _require(self.dataset in PAPER_DATASETS, "input.dataset",
                     f"unknown dataset {self.dataset!r} "
                     f"(available: {sorted(PAPER_DATASETS)})")
        elif self.kind == "pairs":
            _require(self.pairs is not None, "input.pairs",
                     "required for kind 'pairs' (programmatic input only)")
            _require(len(self.pairs) > 0, "input.pairs", "must not be empty")
        elif self.kind == "tsv":
            _require(bool(self.path), "input.path", "required for kind 'tsv'")
        elif self.kind == "reads":
            _require(bool(self.path), "input.path", "required for kind 'reads'")
            _require(bool(self.reference), "input.reference",
                     "required for kind 'reads' (FASTA to seed the reads against)")
        elif self.kind == "mapping":
            _require(self.n_reads >= 1, "input.n_reads", "must be at least 1")
            _require(self.read_length >= 1, "input.read_length", "must be at least 1")
            _require(self.genome_length >= self.read_length, "input.genome_length",
                     "must be at least the read length")

    def display_name(self) -> str:
        """The run label reports carry (mirrors the legacy CLIs' naming)."""
        if self.name:
            return self.name
        if self.kind == "dataset":
            return str(self.dataset)
        if self.kind in ("tsv", "reads"):
            return Path(str(self.path)).name
        if self.kind == "mapping":
            return f"whole-genome({self.n_reads}x{self.read_length}bp)"
        return "pairs"


@dataclass(frozen=True)
class PlannerSpec:
    """Knobs of the adaptive cascade planner (``[filter.planner]``).

    Only meaningful together with ``filter = "auto"``: ``sample_pairs`` caps
    the probe prefix the planner measures, ``false_accept_budget`` is the
    accept-rate excess (fraction of the probe) a candidate may show over the
    tightest candidate and still be admissible, ``max_stages`` bounds the
    cascade length searched, and ``candidates`` — when given — replaces the
    generated candidate set with explicit cascades.
    """

    sample_pairs: int = DEFAULT_PLANNER_SAMPLE_PAIRS
    false_accept_budget: float = DEFAULT_PLANNER_FALSE_ACCEPT_BUDGET
    max_stages: int = DEFAULT_PLANNER_MAX_STAGES
    candidates: "tuple[tuple[str, ...], ...] | None" = None

    def __post_init__(self) -> None:
        _require(isinstance(self.sample_pairs, int) and self.sample_pairs >= 1,
                 "filter.planner.sample_pairs", "must be a positive integer")
        budget = self.false_accept_budget
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            raise _err("filter.planner.false_accept_budget",
                       f"expected a number, got {budget!r}")
        object.__setattr__(self, "false_accept_budget", float(budget))
        _require(0.0 <= self.false_accept_budget <= 1.0,
                 "filter.planner.false_accept_budget", "must be in [0, 1]")
        _require(isinstance(self.max_stages, int) and 1 <= self.max_stages <= 3,
                 "filter.planner.max_stages", "must be between 1 and 3")
        if self.candidates is not None:
            from ..engine.registry import available_filters

            known = available_filters()
            _require(
                isinstance(self.candidates, (list, tuple)) and len(self.candidates) > 0,
                "filter.planner.candidates",
                "expected a non-empty list of cascades (lists of filter names)",
            )
            normalised = []
            for i, cand in enumerate(self.candidates):
                if isinstance(cand, str):
                    cand = (cand,)
                _require(isinstance(cand, (list, tuple)) and len(cand) > 0,
                         f"filter.planner.candidates[{i}]",
                         "expected a non-empty list of filter names")
                names = tuple(str(name) for name in cand)
                for name in names:
                    _require(name in known, f"filter.planner.candidates[{i}]",
                             f"unknown filter {name!r} (available: {known})")
                _require(len(set(names)) == len(names),
                         f"filter.planner.candidates[{i}]",
                         "a cascade may not repeat a filter")
                normalised.append(names)
            object.__setattr__(self, "candidates", tuple(normalised))


@dataclass(frozen=True)
class FilterSpec:
    """Which filter (or cascade of filters) examines the pairs.

    ``filters = ("auto",)`` defers the choice to the adaptive planner
    (:mod:`repro.planner`): :meth:`Session.run` / ``repro shard`` probe a
    prefix of the input, pick the cheapest admissible cascade, and replace
    the spec with the concrete choice plus a frozen ``plan`` record before
    anything fans out.  ``planner`` tunes that search; ``plan`` appears only
    on resolved workloads and carries the decision's provenance.
    """

    filters: tuple[str, ...] = ("gatekeeper-gpu",)
    error_threshold: int = DEFAULT_ERROR_THRESHOLD
    planner: "PlannerSpec | None" = None
    plan: "dict[str, Any] | None" = None

    def __post_init__(self) -> None:
        filters = self.filters
        if isinstance(filters, str):
            filters = (filters,)
        _require(isinstance(filters, (list, tuple)) and len(filters) > 0,
                 "filter.filters", "expected a non-empty list of filter names")
        filters = tuple(str(name) for name in filters)
        object.__setattr__(self, "filters", filters)
        if "auto" in filters:
            _require(len(filters) == 1, "filter.filters",
                     "'auto' defers the choice to the planner and cannot be "
                     "combined with other filters")
        else:
            from ..engine.registry import available_filters

            known = available_filters()
            for name in filters:
                _require(name in known, "filter.filters",
                         f"unknown filter {name!r} (available: {known})")
        _require(self.error_threshold >= 0, "filter.error_threshold",
                 "must be non-negative")
        if self.planner is not None and not isinstance(self.planner, PlannerSpec):
            object.__setattr__(
                self,
                "planner",
                _build_section(PlannerSpec, "filter.planner", self.planner),
            )
        _require(self.planner is None or self.is_auto, "filter.planner",
                 "only applies when filter = 'auto'")
        if self.plan is not None:
            _require(not self.is_auto, "filter.plan",
                     "a plan record only appears on a resolved workload "
                     "(filters must name the chosen cascade, not 'auto')")
            self._check_plan(self.plan, filters)

    def _check_plan(self, plan: Any, filters: "tuple[str, ...]") -> None:
        """Light validation of a frozen plan record (full trust stays with
        :mod:`repro.planner`, which wrote it)."""
        if not isinstance(plan, Mapping):
            raise _err("filter.plan", f"expected a table/object, got {plan!r}")
        unknown = set(plan) - set(K.PLAN_KEYS)
        if unknown:
            raise _err("filter.plan",
                       f"unknown key(s) {sorted(unknown)} "
                       f"(expected a subset of {sorted(K.PLAN_KEYS)})")
        version = plan.get(K.PLANNER_VERSION)
        _require(isinstance(version, int) and not isinstance(version, bool)
                 and version >= 1,
                 f"filter.plan.{K.PLANNER_VERSION}", "must be a positive integer")
        cascade = plan.get(K.CASCADE)
        _require(isinstance(cascade, (list, tuple))
                 and tuple(str(n) for n in cascade) == filters,
                 f"filter.plan.{K.CASCADE}",
                 f"must match filter.filters {list(filters)}; got {cascade!r}")
        probe = plan.get(K.PROBE_PAIRS)
        _require(isinstance(probe, int) and not isinstance(probe, bool)
                 and probe >= 1,
                 f"filter.plan.{K.PROBE_PAIRS}", "must be a positive integer")
        # Canonicalise to a plain JSON-shaped copy so spec equality (and the
        # shard-set identity check of ``repro merge``) never depends on how
        # the record was constructed.
        object.__setattr__(self, "plan", json.loads(json.dumps(plan, sort_keys=True)))

    @property
    def is_cascade(self) -> bool:
        return len(self.filters) > 1

    @property
    def is_auto(self) -> bool:
        """True while the filter choice is still deferred to the planner."""
        return self.filters == ("auto",)


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a partitioned input range (``repro.cluster``).

    A sharded workload runs the half-open pair slice ``[start, stop)`` of an
    input that totals ``total`` pairs; ``index`` identifies the shard among
    its ``n_shards`` siblings so ``repro merge`` can check the set is
    complete, duplicate-free and contiguous before reducing.  Shard files are
    ordinarily generated by ``repro shard`` (:mod:`repro.cluster.plan`), not
    written by hand.
    """

    index: int
    n_shards: int
    start: int
    stop: int
    total: int

    def __post_init__(self) -> None:
        _require(self.n_shards >= 1, "execution.shard.n_shards",
                 "must be at least 1")
        _require(0 <= self.index < self.n_shards, "execution.shard.index",
                 f"must be in [0, n_shards); got {self.index} of {self.n_shards}")
        _require(self.total >= 1, "execution.shard.total", "must be at least 1")
        _require(0 <= self.start < self.stop, "execution.shard.start",
                 f"need 0 <= start < stop; got [{self.start}, {self.stop})")
        _require(self.stop <= self.total, "execution.shard.stop",
                 f"slice [{self.start}, {self.stop}) exceeds total {self.total}")

    @property
    def n_pairs(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ExecutionSpec:
    """How the run executes: mode, devices, chunking, verification, backend.

    ``executor`` / ``workers`` / ``prefetch`` select the host-side execution
    backend (:mod:`repro.exec`): ``serial`` (default), ``threads`` or
    ``processes`` with ``workers`` pool slots, and — for streamed runs — a
    prefetching producer thread that parses/encodes chunk ``N + 1`` while
    chunk ``N`` filters.  ``kernel_tier`` selects the filter kernel
    implementation (:mod:`repro.filters.native`): ``auto`` (Numba-compiled
    kernels when available, the default), ``numpy`` (always the pure-NumPy
    reference) or ``native`` (prefer compiled, silently falling back when
    Numba is absent).  These knobs change *how fast* a workload runs, never
    *what* it computes: results are byte-identical across backends, worker
    counts and kernel tiers, which is why (like measured wall clock) they
    are excluded from the canonical :meth:`Workload.to_dict` record.
    """

    mode: str = "auto"
    setup: str = "setup1"
    n_devices: int = 1
    encoding: str = "device"
    chunk_size: int = DEFAULT_CHUNK_SIZE
    batch_size: int = DEFAULT_BATCH_SIZE
    verify: bool = True
    executor: str = "serial"
    workers: int = 1
    prefetch: bool = False
    kernel_tier: str = "auto"
    shard: "ShardSpec | None" = None

    def __post_init__(self) -> None:
        from ..exec.executor import EXECUTOR_KINDS
        from ..filters.native import KERNEL_TIERS

        if self.shard is not None and not isinstance(self.shard, ShardSpec):
            object.__setattr__(
                self,
                "shard",
                _build_section(ShardSpec, "execution.shard", self.shard),
            )

        _require(self.mode in EXECUTION_MODES, "execution.mode",
                 f"unknown mode {self.mode!r} (expected one of {list(EXECUTION_MODES)})")
        _require(self.setup in _SETUPS, "execution.setup",
                 f"unknown setup {self.setup!r} (expected one of {list(_SETUPS)})")
        _require(self.encoding in _ENCODINGS, "execution.encoding",
                 f"unknown encoding {self.encoding!r} (expected one of {list(_ENCODINGS)})")
        _require(self.n_devices >= 1, "execution.n_devices", "must be at least 1")
        _require(self.chunk_size >= 1, "execution.chunk_size", "must be at least 1")
        _require(self.batch_size >= 1, "execution.batch_size", "must be at least 1")
        _require(self.executor in EXECUTOR_KINDS, "execution.executor",
                 f"unknown executor {self.executor!r} "
                 f"(expected one of {list(EXECUTOR_KINDS)})")
        _require(self.workers >= 1, "execution.workers", "must be at least 1")
        _require(self.kernel_tier in KERNEL_TIERS, "execution.kernel_tier",
                 f"unknown kernel_tier {self.kernel_tier!r} "
                 f"(expected one of {list(KERNEL_TIERS)})")


@dataclass(frozen=True)
class OutputSpec:
    """What the :class:`~repro.api.result.Result` should carry.

    ``collect_decisions`` keeps the concatenated per-pair
    accept/estimate/undefined vectors on the raw streaming report
    (``result.raw.accepted`` etc.); off by default so streamed runs stay
    O(chunk) on unbounded inputs.
    """

    include_chunks: bool = True
    max_chunk_rows: int = 50
    collect_decisions: bool = False

    def __post_init__(self) -> None:
        _require(self.max_chunk_rows >= 0, "output.max_chunk_rows",
                 "must be non-negative")


@dataclass(frozen=True)
class Workload:
    """One declarative filtering/mapping job for :meth:`Session.run`."""

    input: InputSpec
    filter: FilterSpec = field(default_factory=FilterSpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    output: OutputSpec = field(default_factory=OutputSpec)

    def __post_init__(self) -> None:
        # Cross-section constraints that no single spec can check alone —
        # checked at construction so a queued workload can never be one that
        # is guaranteed to fail at run time.
        if self.input.kind == "mapping":
            _require(
                self.execution.mode != "streaming",
                "execution.mode",
                "kind 'mapping' always runs the in-memory mapper; "
                "remove mode='streaming' (or use 'auto')",
            )
            _require(
                not self.filter.is_cascade,
                "filter.filters",
                "mapping workloads take a single filter, not a cascade",
            )
        if self.filter.is_auto:
            _require(
                self.input.kind != "mapping",
                "filter.filters",
                "mapping workloads take a concrete filter; 'auto' planning "
                "applies to filtering workloads only",
            )
            _require(
                self.execution.shard is None,
                "filter.filters",
                "'auto' must be resolved to a concrete cascade before "
                "sharding (repro shard plans once and pins the choice)",
            )
        if self.input.kind in ("tsv", "reads"):
            _require(
                self.execution.mode != "memory",
                "execution.mode",
                f"'memory' does not support file-backed input kind "
                f"{self.input.kind!r}; use mode 'streaming' (or 'auto')",
            )
        shard = self.execution.shard
        if shard is not None:
            _require(
                self.input.kind != "mapping",
                "execution.shard",
                "mapping workloads cannot be sharded",
            )
            if self.input.kind == "dataset":
                _require(
                    shard.total == self.input.n_pairs,
                    "execution.shard.total",
                    f"must equal input.n_pairs ({self.input.n_pairs}) "
                    f"for kind 'dataset'; got {shard.total}",
                )
            elif self.input.kind == "pairs":
                _require(
                    shard.total == len(self.input.pairs or ()),
                    "execution.shard.total",
                    f"must equal the number of pairs "
                    f"({len(self.input.pairs or ())}); got {shard.total}",
                )
            if self.resolved_mode() == "streaming":
                # Chunk alignment keeps a sharded streaming run's chunking —
                # and with it n_chunks / n_batches / the stream-overlap model
                # — identical to the single-run chunking of the same slice,
                # which the merge identity guarantee depends on.
                _require(
                    shard.start % self.execution.chunk_size == 0,
                    "execution.shard.start",
                    f"streaming shards must start on a chunk boundary "
                    f"(chunk_size={self.execution.chunk_size}); got {shard.start}",
                )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Workload":
        """Build and validate a workload from a plain (TOML/JSON-shaped) dict.

        The ``filter`` section accepts the conveniences the CLIs offer:
        ``filter = "name"`` (a single filter) and ``cascade = [...]`` are
        both aliases for ``filters``.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"workload: expected a table/object, got {data!r}")
        known_sections = {"input", "filter", "execution", "output"}
        unknown = set(data) - known_sections
        if unknown:
            raise ValueError(
                f"workload: unknown section(s) {sorted(unknown)} "
                f"(expected {sorted(known_sections)})"
            )
        if "input" not in data:
            raise _err("input", "section is required")
        input_spec = _build_section(InputSpec, "input", data["input"])
        filter_data = data.get("filter", {})
        filter_spec = _build_section(
            FilterSpec,
            "filter",
            filter_data,
            aliases={
                "filter": lambda v: ("filters", (v,) if isinstance(v, str) else v),
                "cascade": lambda v: ("filters", v),
            },
        )
        execution = _build_section(ExecutionSpec, "execution", data.get("execution", {}))
        output = _build_section(OutputSpec, "output", data.get("output", {}))
        return cls(input=input_spec, filter=filter_spec,
                   execution=execution, output=output)

    @classmethod
    def from_toml(cls, source: str | Path) -> "Workload":
        """Load a workload from a TOML file path (or a TOML string)."""
        import tomllib

        text, label = _read_source(source, (".toml",))
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{label}: invalid TOML: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_json(cls, source: str | Path) -> "Workload":
        """Load a workload from a JSON file path (or a JSON string)."""
        text, label = _read_source(source, (".json",))
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{label}: invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "Workload":
        """Load a workload file, dispatching on the ``.toml`` / ``.json`` suffix."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".toml":
            return cls.from_toml(path)
        if suffix == ".json":
            return cls.from_json(path)
        raise ValueError(
            f"{path}: unrecognised workload suffix {suffix!r} "
            "(expected .toml or .json)"
        )

    # ------------------------------------------------------------------ #
    # Canonicalisation
    # ------------------------------------------------------------------ #
    def resolved_mode(self) -> str:
        """The concrete execution mode after resolving ``auto``."""
        if self.execution.mode != "auto":
            return self.execution.mode
        return "streaming" if self.input.kind in ("tsv", "reads") else "memory"

    def to_dict(self) -> "dict[str, Any]":
        """Fully-resolved canonical dictionary recording exactly what runs.

        Only the fields that *apply* are emitted — kind-irrelevant input
        fields, ``chunk_size`` for in-memory runs, and the
        devices/chunking/verify knobs the mapping workload does not consume
        are all dropped — so two workloads that behave identically serialise
        identically regardless of how they were constructed (TOML file, JSON,
        or CLI flags).  The ``executor`` / ``workers`` / ``prefetch`` /
        ``kernel_tier`` backend knobs are excluded too: they never change a
        result (byte-identical across backends and kernel tiers), so
        workloads differing only in backend or tier produce byte-identical
        reports.  Canonicalisation is idempotent:
        ``from_dict(w.to_dict()).to_dict() == w.to_dict()`` for every
        serialisable kind.  The exception is ``kind="pairs"``: in-memory
        pairs are represented by their count, so the emitted dict documents
        the run but cannot be re-executed via ``from_dict``.
        """
        spec = self.input
        input_dict: dict[str, Any] = {"kind": spec.kind}
        if spec.kind == "dataset":
            input_dict.update(dataset=spec.dataset, n_pairs=spec.n_pairs, seed=spec.seed)
        elif spec.kind == "pairs":
            input_dict.update(name=spec.display_name(), n_pairs=len(spec.pairs or ()))
        elif spec.kind == "tsv":
            input_dict.update(path=str(spec.path))
        elif spec.kind == "reads":
            input_dict.update(
                path=str(spec.path),
                reference=str(spec.reference),
                seeding_k=spec.seeding_k,
                max_candidates_per_read=spec.max_candidates_per_read,
            )
        elif spec.kind == "mapping":
            input_dict.update(
                n_reads=spec.n_reads,
                read_length=spec.read_length,
                genome_length=spec.genome_length,
                seed=spec.seed,
                prefilter=spec.prefilter,
            )
        mode = self.resolved_mode()
        execution_dict: dict[str, Any] = {
            "mode": mode,
            "setup": self.execution.setup,
            "n_devices": self.execution.n_devices,
            "encoding": self.execution.encoding,
        }
        if mode == "streaming":
            execution_dict["chunk_size"] = self.execution.chunk_size
        if spec.kind != "mapping":
            # The mapper owns its batching and always verifies; these knobs
            # only apply to filtering workloads.
            execution_dict["batch_size"] = self.execution.batch_size
            execution_dict["verify"] = self.execution.verify
        if self.execution.shard is not None:
            shard = self.execution.shard
            execution_dict["shard"] = {
                "index": shard.index,
                "n_shards": shard.n_shards,
                "start": shard.start,
                "stop": shard.stop,
                "total": shard.total,
            }
        filter_dict: dict[str, Any] = {
            "filters": list(self.filter.filters),
            "error_threshold": self.filter.error_threshold,
        }
        if self.filter.planner is not None:
            planner = self.filter.planner
            planner_dict: dict[str, Any] = {
                "sample_pairs": planner.sample_pairs,
                "false_accept_budget": planner.false_accept_budget,
                "max_stages": planner.max_stages,
            }
            if planner.candidates is not None:
                planner_dict["candidates"] = [list(c) for c in planner.candidates]
            filter_dict["planner"] = planner_dict
        if self.filter.plan is not None:
            filter_dict["plan"] = json.loads(
                json.dumps(self.filter.plan, sort_keys=True)
            )
        return {
            "input": input_dict,
            "filter": filter_dict,
            "execution": execution_dict,
            "output": {
                "include_chunks": self.output.include_chunks,
                "max_chunk_rows": self.output.max_chunk_rows,
                "collect_decisions": self.output.collect_decisions,
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def replace(self, **sections: Any) -> "Workload":
        """A copy with whole sections replaced (``input=``, ``filter=``, ...)."""
        return dataclasses.replace(self, **sections)


def _read_source(source: str | Path, suffixes: tuple[str, ...]) -> tuple[str, str]:
    """Read a file path, or accept inline text when it cannot be a path."""
    if isinstance(source, Path):
        if not source.exists():
            raise ValueError(f"{source}: workload file not found")
        return source.read_text(), str(source)
    if "\n" not in source:
        path = Path(source)
        if path.exists():
            return path.read_text(), str(path)
        # A newline-free string that does not look like inline TOML/JSON
        # content can only have been meant as a path — report it as such
        # rather than producing a baffling parse error on the "content".
        looks_like_content = source.lstrip()[:1] in ("{", "[") or "=" in source
        if not looks_like_content:
            raise ValueError(f"{source}: workload file not found")
    return source, "<inline workload>"
